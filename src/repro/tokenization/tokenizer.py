"""The DataVisT5 tokenizer.

The original system reuses the CodeT5+ SentencePiece tokenizer.  Offline we
use a word-level tokenizer with a character-level fallback for words that
are not in the vocabulary.  This keeps identifiers such as ``artist.country``
intact (they are single tokens in the synthetic corpora, so the fallback is
rarely exercised) while guaranteeing that *any* string round-trips through
``encode``/``decode`` without information loss for in-vocabulary text.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence

from repro.errors import TokenizationError
from repro.tokenization.special_tokens import (
    EOS_TOKEN,
    MODALITY_TOKENS,
    PAD_TOKEN,
    UNK_TOKEN,
    default_special_tokens,
    sentinel_token,
)
from repro.tokenization.vocab import Vocabulary

_SPECIAL_RE = re.compile(r"<extra_id_\d+>|" + "|".join(re.escape(tag) for tag in MODALITY_TOKENS) + r"|</s>|<pad>|<unk>|<s>")
_WORD_RE = re.compile(r"[a-z0-9_.%]+|'[^']*'|[^\sa-z0-9_.%]", re.IGNORECASE)


class DataVisTokenizer:
    """Tokenizer mapping DataVisT5 text sequences to integer id sequences."""

    def __init__(self, vocab: Vocabulary, lowercase: bool = True, character_fallback: bool = True):
        self.vocab = vocab
        self.lowercase = lowercase
        self.character_fallback = character_fallback

    # -- text <-> tokens ----------------------------------------------------
    def text_to_tokens(self, text: str) -> list[str]:
        """Split ``text`` into tokens, keeping special tokens intact."""
        tokens: list[str] = []
        cursor = 0
        for match in _SPECIAL_RE.finditer(text):
            tokens.extend(self._split_plain(text[cursor : match.start()]))
            tokens.append(match.group(0))
            cursor = match.end()
        tokens.extend(self._split_plain(text[cursor:]))
        return tokens

    def _split_plain(self, text: str) -> list[str]:
        if self.lowercase:
            text = text.lower()
        return _WORD_RE.findall(text)

    def tokens_to_text(self, tokens: Sequence[str]) -> str:
        """Join tokens back into a string (inverse of :meth:`text_to_tokens` up to spacing)."""
        return " ".join(token for token in tokens if token not in (PAD_TOKEN,))

    # -- tokens <-> ids -----------------------------------------------------
    def encode(self, text: str, add_eos: bool = True, max_length: int | None = None) -> list[int]:
        """Encode ``text`` into a list of token ids.

        Unknown words are expanded into single characters when
        ``character_fallback`` is on; characters absent from the vocabulary
        map to the unknown id.
        """
        ids: list[int] = []
        for token in self.text_to_tokens(text):
            if token in self.vocab:
                ids.append(self.vocab.token_to_id(token))
            elif self.character_fallback and len(token) > 1:
                for character in token:
                    ids.append(self.vocab.token_to_id(character))
            else:
                ids.append(self.vocab.unk_id)
        if add_eos:
            ids.append(self.vocab.eos_id)
        if max_length is not None:
            if max_length < 1:
                raise TokenizationError(f"max_length must be >= 1, got {max_length}")
            if len(ids) > max_length:
                ids = ids[:max_length]
                if add_eos:
                    ids[-1] = self.vocab.eos_id
        return ids

    def decode(self, ids: Iterable[int], skip_special_tokens: bool = True) -> str:
        """Decode a sequence of ids back into a string."""
        tokens: list[str] = []
        structural = {PAD_TOKEN, EOS_TOKEN, "<s>"}
        for token_id in ids:
            token = self.vocab.id_to_token(int(token_id))
            if skip_special_tokens and token in structural:
                continue
            if skip_special_tokens and token == UNK_TOKEN:
                continue
            tokens.append(token)
        return self.tokens_to_text(tokens)

    def batch_encode(
        self,
        texts: Sequence[str],
        max_length: int | None = None,
        add_eos: bool = True,
    ) -> list[list[int]]:
        """Encode several texts; padding is left to the model's collator."""
        return [self.encode(text, add_eos=add_eos, max_length=max_length) for text in texts]

    # -- sentinel helpers ---------------------------------------------------
    def sentinel_id(self, index: int) -> int:
        """Id of the ``index``-th sentinel token (must exist in the vocabulary)."""
        token = sentinel_token(index)
        if token not in self.vocab:
            raise TokenizationError(f"sentinel {token!r} is not in the vocabulary")
        return self.vocab.token_to_id(token)

    @property
    def num_sentinels(self) -> int:
        """Number of span-corruption sentinel tokens in the vocabulary."""
        count = 0
        while sentinel_token(count) in self.vocab:
            count += 1
        return count

    # -- construction helpers ------------------------------------------------
    @classmethod
    def build_from_corpus(
        cls,
        texts: Iterable[str],
        max_vocab_size: int | None = None,
        min_frequency: int = 1,
        lowercase: bool = True,
    ) -> "DataVisTokenizer":
        """Build a tokenizer whose vocabulary covers ``texts``.

        Single characters of every word are always added so the character
        fallback can spell out unseen identifiers at inference time.
        """
        scratch = cls(Vocabulary(), lowercase=lowercase)
        sequences: list[list[str]] = []
        characters: set[str] = set()
        special = set(default_special_tokens())
        for text in texts:
            tokens = scratch.text_to_tokens(text)
            sequences.append(tokens)
            for token in tokens:
                if token not in special:
                    characters.update(token)
        vocab = Vocabulary.build(sequences, max_size=max_vocab_size, min_frequency=min_frequency)
        for character in sorted(characters):
            vocab.add_token(character)
        return cls(vocab, lowercase=lowercase)
