"""Vocabulary: a bidirectional mapping between tokens and integer ids."""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable
from pathlib import Path

from repro.errors import TokenizationError
from repro.tokenization.special_tokens import (
    PAD_TOKEN,
    EOS_TOKEN,
    UNK_TOKEN,
    BOS_TOKEN,
    default_special_tokens,
)


class Vocabulary:
    """An append-only token <-> id mapping with frequency-based construction.

    The vocabulary always contains the structural special tokens so that the
    pad / eos / unk ids exist even for an "empty" vocabulary, which keeps the
    neural layers' assumptions (id 0 is padding) valid everywhere.
    """

    def __init__(self, tokens: Iterable[str] | None = None, include_default_specials: bool = True):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        if include_default_specials:
            for token in default_special_tokens():
                self.add_token(token)
        else:
            for token in (PAD_TOKEN, EOS_TOKEN, UNK_TOKEN, BOS_TOKEN):
                self.add_token(token)
        if tokens is not None:
            for token in tokens:
                self.add_token(token)

    # -- construction -----------------------------------------------------
    def add_token(self, token: str) -> int:
        """Add ``token`` if missing and return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    @classmethod
    def build(
        cls,
        corpus: Iterable[Iterable[str]],
        max_size: int | None = None,
        min_frequency: int = 1,
    ) -> "Vocabulary":
        """Build a vocabulary from an iterable of token sequences.

        Tokens are ranked by frequency (ties broken alphabetically so the
        result is deterministic) and truncated to ``max_size`` entries in
        addition to the special tokens.
        """
        counts: Counter[str] = Counter()
        for sequence in corpus:
            counts.update(sequence)
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        vocab = cls()
        added = 0
        for token, frequency in ranked:
            if frequency < min_frequency:
                break
            if max_size is not None and added >= max_size:
                break
            if token not in vocab:
                vocab.add_token(token)
                added += 1
        return vocab

    # -- lookups -----------------------------------------------------------
    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    def token_to_id(self, token: str) -> int:
        """Return the id of ``token``, falling back to the unknown id."""
        return self._token_to_id.get(token, self._token_to_id[UNK_TOKEN])

    def id_to_token(self, token_id: int) -> str:
        """The token string for ``token_id``."""
        if token_id < 0 or token_id >= len(self._id_to_token):
            raise TokenizationError(f"token id {token_id} outside vocabulary of size {len(self)}")
        return self._id_to_token[token_id]

    @property
    def pad_id(self) -> int:
        """Id of the padding token."""
        return self._token_to_id[PAD_TOKEN]

    @property
    def eos_id(self) -> int:
        """Id of the end-of-sequence token."""
        return self._token_to_id[EOS_TOKEN]

    @property
    def unk_id(self) -> int:
        """Id of the unknown-token fallback."""
        return self._token_to_id[UNK_TOKEN]

    @property
    def bos_id(self) -> int:
        """Id of the beginning-of-sequence token."""
        return self._token_to_id[BOS_TOKEN]

    def tokens(self) -> list[str]:
        """All tokens in id order (a copy; mutating it does not affect the vocab)."""
        return list(self._id_to_token)

    # -- persistence -------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the vocabulary to ``path`` as a JSON list of tokens in id order."""
        payload = {"tokens": self._id_to_token}
        Path(path).write_text(json.dumps(payload, ensure_ascii=False, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path: str | Path) -> "Vocabulary":
        """Load a vocabulary previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        tokens = payload.get("tokens")
        if not isinstance(tokens, list) or not tokens:
            raise TokenizationError(f"invalid vocabulary file: {path}")
        vocab = cls.__new__(cls)
        vocab._token_to_id = {}
        vocab._id_to_token = []
        for token in tokens:
            vocab.add_token(token)
        for required in (PAD_TOKEN, EOS_TOKEN, UNK_TOKEN, BOS_TOKEN):
            if required not in vocab:
                raise TokenizationError(f"vocabulary file {path} is missing required token {required!r}")
        return vocab
