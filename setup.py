"""Setuptools entry point for the src/-layout package.

The project keeps all importable code under ``src/repro``; this file declares
the ``package_dir`` mapping so ``pip install -e .`` (and plain ``pip install
.``) resolve the layout.  In offline environments without the ``wheel``
package, install with ``pip install -e . --no-build-isolation``.

The version is single-sourced from ``repro.__version__`` — parsed textually
so building a wheel never has to import the package (or numpy).
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """The ``__version__`` assignment in ``src/repro/__init__.py``, verbatim."""
    init_text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', init_text, re.MULTILINE)
    if match is None:
        raise RuntimeError("could not find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-datavist5",
    version=read_version(),
    description=(
        "Offline reproduction of DataVisT5 (ICDE 2025): text-to-vis, "
        "vis-to-text and FeVisQA with a unified serving pipeline"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
