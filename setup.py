"""Setuptools entry point.

The pyproject.toml carries the project metadata; this file only exists so the
package can be installed editable (``pip install -e . --no-use-pep517``) in
offline environments where the ``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
