"""Setuptools entry point for the src/-layout package.

The project keeps all importable code under ``src/repro``; this file declares
the ``package_dir`` mapping so ``pip install -e .`` (and plain ``pip install
.``) resolve the layout.  In offline environments without the ``wheel``
package, install with ``pip install -e . --no-build-isolation``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-datavist5",
    version="1.0.0",
    description=(
        "Offline reproduction of DataVisT5 (ICDE 2025): text-to-vis, "
        "vis-to-text and FeVisQA with a unified serving pipeline"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
