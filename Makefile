# Developer entry points.  Every target sets PYTHONPATH=src so the repo works
# without installation; `make install` makes that unnecessary.

PYTHON ?= python
EXAMPLES := quickstart text_to_vis_pipeline chart_captioning fevisqa_assistant dataset_report calibrate_checkpoint trace_request

.PHONY: test test-fast test-streaming test-chaos bench bench-decode bench-continuous bench-serving bench-deploy bench-scale bench-corpus bench-obs calibrate-demo trace-demo smoke ci install docs check-docs help

help:
	@echo "make test          - tier-1 verification: full test + benchmark suite (pytest -x -q)"
	@echo "make test-fast     - tests/ only, without the process-killing chaos suite (pytest tests -m 'not chaos')"
	@echo "make test-streaming - streaming + corpus-QA equivalence suites only (chunk protocol, reassembly-equals-sync, differential retrieval)"
	@echo "make test-chaos    - sharded-tier chaos suite only, bounded by a 900s watchdog (pytest -m chaos)"
	@echo "make bench         - benchmark harness only (paper tables I-XII at smoke scale)"
	@echo "make bench-decode  - decode + precision benchmark -> BENCH_decode.json + BENCH_quant_policy.json (fails if cached decode is slower than naive, fp32 slower than fp64, fp32 agreement < 99%, calibrated int8 agreement < 99%, int8 speedup < 1.5x, or int8 compression < 6x)"
	@echo "make bench-continuous - continuous-batching benchmark -> BENCH_continuous.json (fails if continuous tokens/sec < static batching, short-request p50 improves < 1.5x, or any output diverges from the naive oracle)"
	@echo "make bench-serving - serving-under-load + precision-sweep benchmark -> BENCH_serving.json (fails if the async server is slower than sync Pipeline.serve, or calibrated int8 serving agreement < 99%)"
	@echo "make calibrate-demo - run the int8 calibration walkthrough (examples/calibrate_checkpoint.py)"
	@echo "make bench-deploy  - deployment-lifecycle benchmark -> BENCH_deploy.json (fails if a hot swap drops/errors/misroutes a request, incumbent outputs change, canary routing is non-deterministic, or shadow agreement < 1.0)"
	@echo "make bench-scale   - sharded-tier scale benchmark -> BENCH_scale.json (fails if outputs diverge from Pipeline.serve, 2-shard speedup < 1.7x, 4-shard speedup < 3x, or a rolling swap drops a request)"
	@echo "make bench-corpus  - corpus-QA retrieval + streaming benchmark -> BENCH_corpus.json (fails if hit rate < 0.9, rankings are non-deterministic, any stream is not bitwise-equal to sync on either tier, or first-chunk p50 > 0.5x full-response p50)"
	@echo "make bench-obs     - observability benchmark -> BENCH_obs.json (fails if tracing costs > 3% tokens/sec, or one sharded streamed corpus_qa request does not reconstruct its full gateway->shard->pipeline->decode span tree)"
	@echo "make trace-demo    - stream one corpus_qa request with tracing on and print its span tree (examples/trace_request.py)"
	@echo "make smoke         - run every example end-to-end"
	@echo "make docs          - regenerate the API reference (docs/api/) from docstrings"
	@echo "make check-docs    - docstring-coverage gate: fail if any public repro.* surface lacks a docstring"
	@echo "make ci            - what the CI workflow runs: tier-1 tests + smoke + docs build + docstring gate"
	@echo "make install       - editable install (pip install -e .)"

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# The fast inner loop: unit/property suites only — no paper-table benchmarks
# (directory split) and no chaos suite (marker split; it kills real forked
# processes and dominates tests/ wall-clock).
test-fast:
	PYTHONPATH=src $(PYTHON) -m pytest tests -q -m "not chaos"

# The streaming contract end to end: chunk wire protocol, reassembly-equals-
# sync properties, and the retrieval index's differential determinism.
test-streaming:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_serving_streaming.py tests/test_serving_protocol_roundtrip.py tests/datasets/test_corpus_index.py -q

# The chaos suite SIGKILLs/SIGSTOPs live shard processes; if a gateway
# regression ever left a request future unresolved it would hang rather than
# fail, so the watchdog turns that hang into a hard failure.
test-chaos:
	PYTHONPATH=src timeout 900 $(PYTHON) -m pytest tests -q -m chaos

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks -q

bench-decode:
	PYTHONPATH=src $(PYTHON) benchmarks/decode_benchmark.py --output BENCH_decode.json

bench-continuous:
	PYTHONPATH=src $(PYTHON) benchmarks/continuous_benchmark.py --output BENCH_continuous.json

bench-serving:
	PYTHONPATH=src $(PYTHON) benchmarks/serving_benchmark.py --output BENCH_serving.json

bench-deploy:
	PYTHONPATH=src $(PYTHON) benchmarks/deploy_benchmark.py --output BENCH_deploy.json

bench-scale:
	PYTHONPATH=src $(PYTHON) benchmarks/scale_benchmark.py --output BENCH_scale.json

bench-corpus:
	PYTHONPATH=src $(PYTHON) benchmarks/corpus_benchmark.py --output BENCH_corpus.json

bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/obs_benchmark.py --output BENCH_obs.json

# The observability walkthrough (trace one streamed request, render the span
# tree and the merged metrics); `make smoke` also runs it.
trace-demo:
	PYTHONPATH=src $(PYTHON) examples/trace_request.py

# The full calibration workflow (fine-tune -> calibrate -> quantize ->
# register -> rebuild) at example scale; `make smoke` also runs it.
calibrate-demo:
	PYTHONPATH=src $(PYTHON) examples/calibrate_checkpoint.py

# Keep this the single source of truth for what CI executes, so local runs
# and .github/workflows/ci.yml can never drift apart.  `docs` doubles as the
# docs build check (a module that fails to import or document fails CI), and
# the diff check after it fails CI when the regenerated API reference does
# not match the committed docs/api pages — generation is deterministic, so a
# mismatch means someone changed docstrings without running `make docs`.
ci: test smoke docs check-docs
	git diff --exit-code -- docs/api

smoke:
	@set -e; for example in $(EXAMPLES); do \
		echo "== examples/$$example.py =="; \
		PYTHONPATH=src $(PYTHON) examples/$$example.py; \
	done

docs:
	PYTHONPATH=src $(PYTHON) tools/gen_api_docs.py --output docs/api

check-docs:
	$(PYTHON) tools/check_docstrings.py --root src/repro

# pip's editable path needs the `wheel` package; fully-offline images without
# it fall back to the legacy setuptools develop command.
install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop
