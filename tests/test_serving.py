"""Tests for the ``repro.serving`` subsystem.

Covers the acceptance guarantees of the serving layer: micro-batched serving
is bitwise-identical to sequential serving for mixed-task bursts, repeated
requests are answered from the LRU response cache (observable through its hit
counter), and the registry constructs every baseline family from plain config
dicts.
"""

from __future__ import annotations

import pytest

from repro.baselines import GENERATION_BASELINES, TEXT_TO_VIS_BASELINES
from repro.core.config import DataVisT5Config, TrainingConfig
from repro.core.model import DataVisT5
from repro.datasets import generate_nvbench
from repro.errors import ModelConfigError, ServingStateError
from repro.serving import (
    ERROR_BACKEND,
    ERROR_INVALID_REQUEST,
    LRUCache,
    MicroBatcher,
    Pipeline,
    PipelineConfig,
    Request,
    available_baselines,
    build_generation,
    build_text_to_vis,
    normalize_key,
    register_generation,
)
from repro.serving.registry import _EXTRA_GENERATION


# -- fixtures -------------------------------------------------------------------------


@pytest.fixture(scope="module")
def nvbench(small_pool):
    return generate_nvbench(small_pool, examples_per_database=6, seed=0)


@pytest.fixture(scope="module")
def mixed_requests(small_pool, nvbench):
    """A burst of >= 8 requests spanning all three servable tasks."""
    examples = nvbench.examples
    requests = []
    for example in examples[:4]:
        schema = small_pool.get(example.db_id).schema
        requests.append(Request(task="text_to_vis", question=example.question, schema=schema))
    for example in examples[4:7]:
        schema = small_pool.get(example.db_id).schema
        requests.append(Request(task="vis_to_text", chart=example.query, schema=schema))
    for example in examples[7:10]:
        schema = small_pool.get(example.db_id).schema
        requests.append(
            Request(
                task="fevisqa",
                question="How many parts are there in the chart ?",
                chart=example.query,
                schema=schema,
            )
        )
    assert len(requests) >= 8
    return requests


def _baseline_pipeline(small_pool, nvbench, **pipeline_overrides) -> Pipeline:
    pipeline = Pipeline.from_config(
        {
            "text_to_vis": {"type": "retrieval", "revise": True},
            "vis_to_text": {"type": "heuristics"},
            "fevisqa": {"type": "heuristics"},
            "pipeline": pipeline_overrides,
        }
    )
    pipeline.backend("text_to_vis").fit(nvbench.examples, small_pool)
    return pipeline


# -- LRU cache ------------------------------------------------------------------------


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is now the stalest entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_get_or_compute_computes_once(self):
        cache = LRUCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("key", lambda: calls.append(1) or "value")
            assert value == "value"
        assert len(calls) == 1
        assert cache.hits == 2 and cache.misses == 1

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelConfigError):
            LRUCache(capacity=-1)

    def test_normalize_key_collapses_case_and_whitespace(self):
        assert normalize_key("Show  Me\tBars") == normalize_key("show me bars")
        assert normalize_key("a b", "c") != normalize_key("a", "b c")


# -- micro-batcher --------------------------------------------------------------------


class TestMicroBatcher:
    def test_results_align_with_submission_order(self):
        batcher = MicroBatcher(lambda items: [item * 2 for item in items], max_batch_size=3)
        assert batcher.run(list(range(10))) == [2 * i for i in range(10)]

    def test_auto_flush_on_full_batch(self):
        seen_batches = []

        def batch_fn(items):
            seen_batches.append(list(items))
            return items

        batcher = MicroBatcher(batch_fn, max_batch_size=4)
        tickets = [batcher.submit(i) for i in range(9)]
        assert seen_batches == [[0, 1, 2, 3], [4, 5, 6, 7]]  # two auto-flushes
        assert batcher.pending == 1
        assert not tickets[8].ready
        batcher.flush()
        assert tickets[8].ready and tickets[8].value == 8
        assert batcher.stats()["num_batches"] == 3
        assert batcher.stats()["num_full_batches"] == 2

    def test_reading_unready_ticket_raises(self):
        batcher = MicroBatcher(lambda items: items, max_batch_size=8)
        ticket = batcher.submit("x")
        with pytest.raises(ServingStateError):
            _ = ticket.value

    def test_misaligned_batch_fn_rejected(self):
        batcher = MicroBatcher(lambda items: items[:-1], max_batch_size=8)
        batcher.submit("x")
        with pytest.raises(ServingStateError):
            batcher.flush()

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ModelConfigError):
            MicroBatcher(lambda items: items, max_batch_size=0)


# -- registry -------------------------------------------------------------------------


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(TEXT_TO_VIS_BASELINES))
    def test_builds_every_text_to_vis_baseline(self, name):
        baseline = build_text_to_vis({"type": name})
        assert isinstance(baseline, TEXT_TO_VIS_BASELINES[name])

    @pytest.mark.parametrize("name", sorted(GENERATION_BASELINES))
    def test_builds_every_generation_baseline(self, name):
        baseline = build_generation({"type": name})
        assert isinstance(baseline, GENERATION_BASELINES[name])

    def test_bare_name_spec(self):
        assert isinstance(build_generation("heuristics"), GENERATION_BASELINES["heuristics"])

    def test_flat_knobs_expand_to_config_objects(self):
        baseline = build_text_to_vis(
            {"type": "neural", "preset": "tiny", "num_epochs": 1, "batch_size": 4, "warm_start": "queries"}
        )
        assert isinstance(baseline.config, DataVisT5Config)
        assert baseline.training.num_epochs == 1
        assert baseline.training.batch_size == 4
        assert baseline.warm_start == "queries"

    def test_prebuilt_config_objects_pass_through(self):
        config = DataVisT5Config.from_preset("tiny")
        training = TrainingConfig(num_epochs=2)
        baseline = build_text_to_vis({"type": "ncnet", "config": config, "training": training})
        assert baseline.config is config and baseline.training is training

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ModelConfigError, match="unknown text-to-vis baseline"):
            build_text_to_vis({"type": "nope"})

    def test_missing_type_raises(self):
        with pytest.raises(ModelConfigError, match="missing the 'type' key"):
            build_generation({})

    def test_runtime_registration_extends_families(self):
        class Custom(GENERATION_BASELINES["heuristics"]):
            pass

        register_generation("custom", Custom)
        try:
            assert "custom" in available_baselines()["generation"]
            assert isinstance(build_generation("custom"), Custom)
        finally:
            _EXTRA_GENERATION.pop("custom", None)


# -- pipeline -------------------------------------------------------------------------


class TestPipeline:
    def test_batched_equals_sequential_for_mixed_burst(self, small_pool, nvbench, mixed_requests):
        batched = _baseline_pipeline(small_pool, nvbench, max_batch_size=4)
        sequential = _baseline_pipeline(small_pool, nvbench, max_batch_size=4)
        batch_responses = batched.serve(mixed_requests)
        sequential_responses = [sequential.submit(request) for request in mixed_requests]
        assert [r.output for r in batch_responses] == [r.output for r in sequential_responses]
        # the burst actually amortized: fewer batches than items
        stats = batched.stats()["batching"]
        assert sum(s["num_batches"] for s in stats.values()) < len(mixed_requests)

    def test_neural_batched_equals_sequential(self, small_pool, nvbench, mixed_requests):
        config = DataVisT5Config.from_preset(
            "tiny", max_input_length=64, max_target_length=32, max_decode_length=12
        )
        texts = [example.question for example in nvbench.examples[:20]]
        texts += [example.query_text for example in nvbench.examples[:20]]
        model = DataVisT5.from_corpus(texts, config=config, max_vocab_size=800)
        batched = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=4))
        sequential = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=4))
        batch_outputs = [r.output for r in batched.serve(mixed_requests)]
        sequential_outputs = [sequential.submit(request).output for request in mixed_requests]
        assert batch_outputs == sequential_outputs

    @pytest.mark.parametrize("kind", ["neural", "seq2vis"])
    def test_trained_baseline_predict_many_matches_predict(self, small_pool, nvbench, kind):
        spec = {"type": kind, "num_epochs": 1, "batch_size": 8}
        if kind == "neural":
            spec["preset"] = "tiny"
            spec["preset_overrides"] = {"max_input_length": 64, "max_target_length": 32, "max_decode_length": 12}
        baseline = build_text_to_vis(spec)
        examples = nvbench.examples[:12]
        baseline.fit(examples, small_pool)
        questions = [example.question for example in examples[:6]]
        schemas = [small_pool.get(example.db_id).schema for example in examples[:6]]
        batched = baseline.predict_many(questions, schemas)
        sequential = [baseline.predict(question, schema) for question, schema in zip(questions, schemas)]
        assert batched == sequential

    def test_trained_generation_predict_many_matches_predict(self, small_pool, nvbench):
        from repro.datasets.corpus import nvbench_to_vis_to_text_pair

        pairs = [nvbench_to_vis_to_text_pair(example, small_pool) for example in nvbench.examples[:12]]
        baseline = build_generation({"type": "seq2seq", "num_epochs": 1, "batch_size": 8})
        baseline.fit(pairs)
        sources = [pair.source for pair in pairs[:6]]
        assert baseline.predict_many(sources) == [baseline.predict(source) for source in sources]

    def test_repeated_request_served_from_cache(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        first = pipeline.text_to_vis(example.question, schema)
        hits_before = pipeline.caches["response"].hits
        second = pipeline.text_to_vis(example.question, schema)
        assert not first.cached
        assert second.cached
        assert second.output == first.output
        assert pipeline.caches["response"].hits == hits_before + 1

    def test_normalized_inputs_share_cache_entries(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        pipeline.text_to_vis(example.question, schema)
        shouted = pipeline.text_to_vis("  " + example.question.upper() + "  ", schema)
        assert shouted.cached

    def test_duplicates_within_one_burst_hit_backend_once(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench, max_batch_size=8)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        request = Request(task="text_to_vis", question=example.question, schema=schema)
        responses = pipeline.serve([request, request, request])
        assert [r.cached for r in responses] == [False, True, True]
        assert pipeline.stats()["batching"]["text_to_vis"]["num_items"] == 1

    def test_response_cache_eviction(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench, response_cache_size=2)
        schemas = {example.db_id: small_pool.get(example.db_id).schema for example in nvbench.examples[:4]}
        for example in nvbench.examples[:4]:
            pipeline.text_to_vis(example.question, schemas[example.db_id])
        cache = pipeline.caches["response"]
        assert len(cache) == 2
        assert cache.evictions == 2
        # the evicted first request is recomputed, not served from cache
        first = nvbench.examples[0]
        assert not pipeline.text_to_vis(first.question, schemas[first.db_id]).cached

    def test_text_to_vis_response_artifacts(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        response = pipeline.text_to_vis(example.question, schema)
        assert response.task == "text_to_vis"
        assert response.query is not None
        assert response.valid is True
        assert response.vega_lite is not None and "mark" in response.vega_lite
        assert response.source.startswith("<NL>")
        round_trip = response.as_dict()
        assert round_trip["query"] == response.query.to_text()

    def test_ast_and_spec_caches_hit_on_repeats(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        pipeline.vis_to_text(example.query_text, schema=schema)
        pipeline.fevisqa("How many parts ?", chart=example.query_text, schema=schema)
        assert pipeline.caches["ast"].hits >= 1

    def test_render_cache(self, small_pool, nvbench, gallery_database):
        from repro.charts import build_chart
        from repro.database import execute_query
        from repro.vql import parse_dv_query, standardize_dv_query

        pipeline = _baseline_pipeline(small_pool, nvbench)
        query = standardize_dv_query(
            parse_dv_query("visualize pie select country , count ( country ) from artist group by country"),
            schema=gallery_database.schema,
        )
        chart = build_chart(query, result=execute_query(query, gallery_database))
        first = pipeline.render_chart(chart)
        second = pipeline.render_chart(chart)
        assert first == second
        assert pipeline.caches["render"].hits == 1

    def test_unconfigured_task_raises(self, small_pool, nvbench):
        pipeline = Pipeline.from_config({"vis_to_text": {"type": "heuristics"}})
        with pytest.raises(ModelConfigError, match="no backend configured"):
            pipeline.text_to_vis("show me a chart", small_pool.get(nvbench.examples[0].db_id).schema)

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ModelConfigError, match="unknown pipeline config keys"):
            Pipeline.from_config({"tex_to_vis": {"type": "template"}})

    def test_invalid_pipeline_section_key_rejected(self):
        with pytest.raises(ModelConfigError, match="invalid pipeline config"):
            Pipeline.from_config({"pipeline": {"max_batch": 8}})

    def test_invalid_request_rejected(self):
        with pytest.raises(ModelConfigError):
            Request(task="summarize")
        with pytest.raises(ModelConfigError):
            Request(task="text_to_vis")  # no question
        with pytest.raises(ModelConfigError, match="need a schema"):
            Request(task="text_to_vis", question="show me a chart")  # no schema
        with pytest.raises(ModelConfigError):
            Request(task="vis_to_text")  # no chart

    def test_unparseable_prediction_marks_invalid(self, small_pool, nvbench):
        class Gibberish(TEXT_TO_VIS_BASELINES["template"]):
            def predict(self, question, schema):
                return "not a query at all"

        pipeline = Pipeline(text_to_vis=Gibberish())
        schema = small_pool.get(nvbench.examples[0].db_id).schema
        response = pipeline.text_to_vis("show me something", schema)
        assert response.query is None
        assert response.valid is False
        assert response.vega_lite is None

    def test_single_axis_prediction_yields_no_spec_without_crashing(self):
        from repro.database.schema import Column, DatabaseSchema, TableSchema

        schema = DatabaseSchema("shop", [TableSchema("orders", [Column("buyer")])])

        class OneAxis(TEXT_TO_VIS_BASELINES["template"]):
            def predict(self, question, schema):
                return "visualize bar select orders.buyer from orders"

        response = Pipeline(text_to_vis=OneAxis()).text_to_vis("list buyers", schema)
        assert response.query is not None
        assert response.vega_lite is None

    def test_unstandardizable_prediction_marks_invalid(self):
        from repro.database.schema import Column, DatabaseSchema, TableSchema

        schema = DatabaseSchema("shop", [TableSchema("orders", [Column("buyer")])])

        class BadStar(TEXT_TO_VIS_BASELINES["template"]):
            def predict(self, question, schema):
                # parses ('*' is accepted inside any aggregate) but fails
                # standardization, which only allows '*' in count()
                return "visualize bar select sum ( * ) , orders.buyer from orders"

        response = Pipeline(text_to_vis=BadStar()).text_to_vis("total spent", schema)
        assert response.query is None
        assert response.valid is False

    def test_validation_uses_full_request_schema(self):
        from repro.database.schema import Column, DatabaseSchema, TableSchema

        schema = DatabaseSchema(
            "gallery",
            [
                TableSchema("artist", [Column("country")]),
                TableSchema("exhibition", [Column("theme")]),
            ],
        )

        class CrossTable(TEXT_TO_VIS_BASELINES["template"]):
            def predict(self, question, schema):
                return (
                    "visualize bar select exhibition.theme , count ( exhibition.theme ) "
                    "from exhibition group by exhibition.theme"
                )

        # the question implicates only 'artist', so schema filtration drops
        # 'exhibition' from the encoding context — but validation must still
        # run against the caller's full schema
        response = Pipeline(text_to_vis=CrossTable()).text_to_vis("how many artist are there", schema)
        assert response.valid is True

    def test_unparseable_chart_text_does_not_crash_generation_tasks(self):
        pipeline = Pipeline.from_config(
            {"vis_to_text": {"type": "heuristics"}, "fevisqa": {"type": "heuristics"}}
        )
        caption = pipeline.vis_to_text("visualize garbage not a query")
        assert caption.output is not None
        assert "garbage" in caption.source
        answer = pipeline.fevisqa("What type is this chart ?", chart="visualize garbage not a query")
        assert answer.output is not None

    def test_string_schema_with_rule_backend_fails_fast(self, small_pool, nvbench):
        from repro.encoding import encode_schema

        pipeline = Pipeline.from_config({"text_to_vis": {"type": "template"}})
        pipeline.backend("text_to_vis").fit([], small_pool)
        schema_text = encode_schema(small_pool.get(nvbench.examples[0].db_id).schema)
        with pytest.raises(ModelConfigError, match="needs a DatabaseSchema"):
            pipeline.text_to_vis("show me a chart", schema_text)

    def test_cache_hit_replays_artifacts_without_recomputing(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        first = pipeline.text_to_vis(example.question, schema)
        ast_lookups = pipeline.caches["ast"].hits + pipeline.caches["ast"].misses
        spec_lookups = pipeline.caches["spec"].hits + pipeline.caches["spec"].misses
        second = pipeline.text_to_vis(example.question, schema)
        assert second.cached
        assert second.query is first.query
        assert second.vega_lite == first.vega_lite
        assert pipeline.caches["ast"].hits + pipeline.caches["ast"].misses == ast_lookups
        assert pipeline.caches["spec"].hits + pipeline.caches["spec"].misses == spec_lookups

    def test_generation_tasks_echo_parsed_chart_query(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        response = pipeline.vis_to_text(example.query_text, schema=schema)
        assert response.query is not None
        assert response.query.chart_type == example.query.chart_type

    def test_empty_prediction_marks_invalid(self, small_pool, nvbench):
        class Silent(TEXT_TO_VIS_BASELINES["template"]):
            def predict(self, question, schema):
                return ""

        schema = small_pool.get(nvbench.examples[0].db_id).schema
        response = Pipeline(text_to_vis=Silent()).text_to_vis("show me something", schema)
        assert response.query is None
        assert response.valid is False

    def test_serve_preserves_order_with_cache_hits_and_rejections(self, small_pool, nvbench):
        """Regression: a burst mixing hits, misses and rejected requests keeps input order.

        Every slot must hold the response for its own request — cache hits
        must not shift positions and a mid-burst rejection must consume its
        own slot only — and ``stats()`` must account each category once.
        """
        pipeline = _baseline_pipeline(small_pool, nvbench)
        first, second = nvbench.examples[:2]
        schema_a = small_pool.get(first.db_id).schema
        schema_b = small_pool.get(second.db_id).schema
        good_a = Request(task="text_to_vis", question=first.question, schema=schema_a)
        # encoded schema text on a rule-based backend is unpreparable
        bad = Request(task="text_to_vis", question="show me a chart", schema="| db | t : t.c")
        burst = [
            good_a,
            bad,
            good_a,  # duplicate of slot 0: a cache-style fan-out
            Request(task="vis_to_text", chart=second.query, schema=schema_b),
        ]
        responses = pipeline.serve(burst, strict=False)
        assert [r.error for r in responses] == [None, ERROR_INVALID_REQUEST, None, None]
        assert [r.cached for r in responses] == [False, False, True, False]
        assert responses[0].output == responses[2].output
        assert responses[3].task == "vis_to_text"
        assert responses[1].output == "" and responses[1].detail
        stats = pipeline.stats()
        # the duplicate and the rejected request never reach a backend
        assert stats["batching"]["text_to_vis"]["num_items"] == 1
        assert stats["batching"]["vis_to_text"]["num_items"] == 1
        # replaying the burst serves every good slot from cache, same order
        replay = pipeline.serve(burst, strict=False)
        assert [r.error for r in replay] == [None, ERROR_INVALID_REQUEST, None, None]
        assert [r.cached for r in replay] == [True, False, True, True]
        assert [r.output for r in replay] == [r.output for r in responses]
        assert pipeline.stats()["batching"]["text_to_vis"]["num_items"] == 1

    def test_serve_strict_raises_on_unpreparable_request(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        bad = Request(task="text_to_vis", question="show me a chart", schema="| db | t : t.c")
        with pytest.raises(ModelConfigError):
            pipeline.serve([bad])

    def test_serve_strict_false_contains_backend_failures_per_task(self, small_pool, nvbench):
        class Exploding(GENERATION_BASELINES["heuristics"]):
            def predict_many(self, sources):
                raise ModelConfigError("caption backend down")

        pipeline = Pipeline.from_config({"fevisqa": {"type": "heuristics"}})
        pipeline._engines["vis_to_text"] = type(pipeline._engines["fevisqa"])(
            Exploding(), "vis_to_text"
        )
        chart = nvbench.examples[0].query
        burst = [
            Request(task="vis_to_text", chart=chart),
            Request(task="fevisqa", question="How many parts ?", chart=chart),
            Request(task="vis_to_text", chart=nvbench.examples[1].query),
        ]
        responses = pipeline.serve(burst, strict=False)
        assert [r.error for r in responses] == [ERROR_BACKEND, None, ERROR_BACKEND]
        assert responses[1].ok and responses[1].output
        assert "caption backend down" in responses[0].detail

    def test_schema_identity_covers_structure(self):
        from repro.database.schema import Column, ColumnType, DatabaseSchema, TableSchema
        from repro.serving.pipeline import _schema_identity

        same_shape_a = DatabaseSchema("shop", [TableSchema("orders", [Column("buyer")])])
        same_shape_b = DatabaseSchema("shop", [TableSchema("orders", [Column("seller")])])
        assert _schema_identity(same_shape_a) != _schema_identity(same_shape_b)
        # column types matter too: validation verdicts depend on ctype
        number_a = DatabaseSchema("shop", [TableSchema("orders", [Column("a", ColumnType.NUMBER)])])
        text_a = DatabaseSchema("shop", [TableSchema("orders", [Column("a", ColumnType.TEXT)])])
        assert _schema_identity(number_a) != _schema_identity(text_a)

    def test_ast_and_text_chart_inputs_share_cache_identity(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        from_text = pipeline.vis_to_text(example.query_text, schema=schema)
        from_ast = pipeline.vis_to_text(example.query, schema=schema)
        assert from_ast.cached
        assert from_ast.output == from_text.output

    def test_mutating_response_spec_does_not_corrupt_caches(self, small_pool, nvbench):
        pipeline = _baseline_pipeline(small_pool, nvbench)
        example = nvbench.examples[0]
        schema = small_pool.get(example.db_id).schema
        first = pipeline.text_to_vis(example.question, schema)
        first.vega_lite["data"] = {"values": ["mutated"]}
        second = pipeline.text_to_vis(example.question, schema)
        assert second.vega_lite["data"] != {"values": ["mutated"]}

    def test_preset_rejected_outside_neural_families(self):
        with pytest.raises(ModelConfigError, match="not supported"):
            build_text_to_vis({"type": "seq2vis", "preset": "base"})

    def test_preset_and_config_conflict_rejected(self):
        with pytest.raises(ModelConfigError, match="both 'preset' and 'config'"):
            build_text_to_vis(
                {"type": "neural", "preset": "tiny", "config": DataVisT5Config.from_preset("tiny")}
            )

    def test_misplaced_knobs_rejected_for_untrained_baselines(self):
        with pytest.raises(ModelConfigError, match="not supported"):
            build_text_to_vis({"type": "retrieval", "preset": "tiny"})
        with pytest.raises(ModelConfigError, match="only .* train"):
            build_text_to_vis({"type": "retrieval", "seed": 3})

    def test_training_and_flat_knob_conflict_rejected(self):
        with pytest.raises(ModelConfigError, match="both 'training' and flat training knobs"):
            build_text_to_vis(
                {"type": "seq2vis", "training": TrainingConfig(num_epochs=3), "num_epochs": 10}
            )


# -- KV-cached decoding through the serving layer --------------------------------------


@pytest.fixture(scope="module")
def shared_model(nvbench):
    """An untrained (but deterministic) DataVisT5 shared across decode tests."""
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=32, max_decode_length=12
    )
    texts = [example.question for example in nvbench.examples[:20]]
    texts += [example.query_text for example in nvbench.examples[:20]]
    return DataVisT5.from_corpus(texts, config=config, max_vocab_size=800)


class TestCachedDecodeServing:
    """`Pipeline.serve` guarantees must survive the KV-cached decoder swap."""

    def test_cached_and_reference_decoders_agree(self, shared_model, mixed_requests):
        cached = Pipeline.from_model(shared_model, config=PipelineConfig(use_cache=True))
        reference = Pipeline.from_model(shared_model, config=PipelineConfig(use_cache=False))
        cached_outputs = [r.output for r in cached.serve(mixed_requests)]
        reference_outputs = [r.output for r in reference.serve(mixed_requests)]
        assert cached_outputs == reference_outputs

    def test_batch_equals_sequential_under_cached_decoder(self, shared_model, mixed_requests):
        batched = Pipeline.from_model(shared_model, config=PipelineConfig(max_batch_size=4, use_cache=True))
        sequential = Pipeline.from_model(shared_model, config=PipelineConfig(max_batch_size=4, use_cache=True))
        batch_outputs = [r.output for r in batched.serve(mixed_requests)]
        sequential_outputs = [sequential.submit(request).output for request in mixed_requests]
        assert batch_outputs == sequential_outputs

    def test_cache_hit_accounting_under_cached_decoder(self, shared_model, mixed_requests):
        pipeline = Pipeline.from_model(shared_model, config=PipelineConfig(use_cache=True))
        first = pipeline.serve(mixed_requests)
        assert all(not response.cached for response in first)
        baseline_hits = pipeline.stats()["caches"]["response"]["hits"]
        second = pipeline.serve(mixed_requests)
        assert all(response.cached for response in second)
        assert [r.output for r in second] == [r.output for r in first]
        stats = pipeline.stats()["caches"]["response"]
        assert stats["hits"] == baseline_hits + len(mixed_requests)

    def test_neural_baseline_use_cache_knob(self, small_pool, nvbench):
        baseline = build_text_to_vis(
            {
                "type": "neural",
                "preset": "tiny",
                "preset_overrides": {"max_input_length": 64, "max_target_length": 32, "max_decode_length": 8},
                "num_epochs": 1,
                "batch_size": 8,
                "use_cache": False,
            }
        )
        assert baseline.use_cache is False
        examples = nvbench.examples[:8]
        baseline.fit(examples, small_pool)
        questions = [example.question for example in examples[:4]]
        schemas = [small_pool.get(example.db_id).schema for example in examples[:4]]
        reference = baseline.predict_many(questions, schemas)
        baseline.use_cache = True
        assert baseline.predict_many(questions, schemas) == reference

    def test_pipeline_config_accepts_use_cache_key(self):
        pipeline = Pipeline.from_config(
            {"vis_to_text": {"type": "heuristics"}, "pipeline": {"use_cache": False}}
        )
        assert pipeline.config.use_cache is False
