"""DataVisT5 calibration contract: policy search, application, persistence.

The product-level half of the calibration workflow (the nn-level half lives
in ``tests/nn/test_calibration.py``): :meth:`DataVisT5.calibrate` searches a
mixed-precision :class:`QuantPolicy` on held-out texts while leaving the
model float and trainable; :meth:`quantize_int8` applies the stored policy
by default; :meth:`save` persists the policy inside ``weights.npz`` (with
float32-pinned weights stored as float32) and :meth:`load` restores it —
the round trip is bitwise on every master, so a reconstructed deployment
decodes identically to the calibrated original.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DataVisT5Config
from repro.core.model import QUANT_POLICY_KEY, DataVisT5
from repro.errors import ModelConfigError
from repro.nn.calibration import QuantPolicy, quantizable_modules

CORPUS = [
    "visualize bar select artist.country , count ( artist.country ) from artist",
    "how many artists joined after 1998 ?",
    "show the attendance of every exhibition by date",
    "visualize pie select city , sum ( population ) from city group by city",
]


def tiny_model(seed: int = 0) -> DataVisT5:
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=32, max_target_length=16, max_decode_length=6, seed=seed
    )
    return DataVisT5.from_corpus(CORPUS, config=config, max_vocab_size=200)


def calibrated_model(seed: int = 0, pin_embedding: bool = False) -> DataVisT5:
    model = tiny_model(seed=seed)
    model.calibrate(CORPUS, n=3, target_agreement=0.9)
    if pin_embedding and not model.quant_policy.float32_modules:
        # The search may legitimately pin nothing on a tiny seeded model;
        # force a pin so persistence of float32 entries is always exercised.
        modes = dict(model.quant_policy.modes)
        modes["shared_embedding"] = "float32"
        model.quant_policy = QuantPolicy(
            modes=modes,
            alpha=model.quant_policy.alpha,
            target_agreement=model.quant_policy.target_agreement,
            calibration_samples=model.quant_policy.calibration_samples,
        )
    return model


class TestCalibrate:
    def test_calibrate_stores_policy_and_keeps_model_trainable(self):
        model = tiny_model()
        policy = model.calibrate(CORPUS, n=3, target_agreement=0.9)
        assert model.quant_policy is policy
        assert policy.calibration_samples == 3
        assert not model.quantized
        # Still trainable: a training step must not raise.
        optimizer = model.make_optimizer(total_steps=1)
        batch = model.collate(CORPUS[:2], CORPUS[2:4])
        model.train_step(batch, optimizer)

    def test_calibrate_rejects_quantized_model(self):
        model = tiny_model().quantize_int8()
        with pytest.raises(ModelConfigError):
            model.calibrate(CORPUS)

    def test_calibrate_rejects_empty_inputs(self):
        model = tiny_model()
        with pytest.raises(ModelConfigError):
            model.calibrate([])
        with pytest.raises(ModelConfigError):
            model.calibrate(CORPUS, n=0)

    def test_quantize_applies_stored_policy(self):
        model = calibrated_model(pin_embedding=True)
        pinned = model.quant_policy.float32_modules
        model.quantize_int8()
        assert model.quantized
        by_name = dict(quantizable_modules(model.model))
        for name in pinned:
            assert not by_name[name].quantized
        assert any(module.quantized for module in by_name.values())

    def test_explicit_policy_overrides_stored(self):
        model = calibrated_model()
        override = QuantPolicy(modes={"shared_embedding": "int8_asym"})
        model.quantize_int8(policy=override)
        assert model.quant_policy is override
        assert dict(quantizable_modules(model.model))["shared_embedding"].weight_zero_point is not None


class TestPolicyPersistence:
    def test_policy_round_trips_through_checkpoint(self, tmp_path):
        model = calibrated_model(pin_embedding=True).quantize_int8()
        model.save(tmp_path / "ckpt")
        loaded = DataVisT5.load(tmp_path / "ckpt")
        assert loaded.quant_policy == model.quant_policy
        assert loaded.quantized
        for (name, module), (_, twin) in zip(
            quantizable_modules(model.model), quantizable_modules(loaded.model)
        ):
            np.testing.assert_array_equal(module.weight.data, twin.weight.data, err_msg=name)

    def test_pinned_weights_stored_as_float32(self, tmp_path):
        model = calibrated_model(pin_embedding=True).quantize_int8()
        model.save(tmp_path / "ckpt")
        with np.load(tmp_path / "ckpt" / "weights.npz") as data:
            assert QUANT_POLICY_KEY in data.files
            for name in model.quant_policy.float32_modules:
                assert data[f"{name}.weight"].dtype == np.float32

    def test_float_checkpoint_keeps_policy_for_later_quantization(self, tmp_path):
        # Calibrate but do NOT quantize: the policy still travels with the
        # float checkpoint, so a later quantize_int8() applies it.
        model = calibrated_model(pin_embedding=True)
        model.save(tmp_path / "ckpt")
        loaded = DataVisT5.load(tmp_path / "ckpt")
        assert not loaded.quantized
        assert loaded.quant_policy == model.quant_policy
        loaded.quantize_int8()
        by_name = dict(quantizable_modules(loaded.model))
        for name in loaded.quant_policy.float32_modules:
            assert not by_name[name].quantized

    def test_predictions_survive_the_round_trip(self, tmp_path):
        model = calibrated_model(pin_embedding=True).quantize_int8()
        model.save(tmp_path / "ckpt")
        loaded = DataVisT5.load(tmp_path / "ckpt")
        question = "how many artists joined after 1998 ?"
        assert loaded.predict_batch([question]) == model.predict_batch([question])

    def test_tampered_policy_entry_fails_loudly(self, tmp_path):
        model = calibrated_model().quantize_int8()
        model.save(tmp_path / "ckpt")
        weights_path = tmp_path / "ckpt" / "weights.npz"
        with np.load(weights_path) as data:
            state = {name: data[name] for name in data.files}
        state[QUANT_POLICY_KEY] = np.array(str(state[QUANT_POLICY_KEY]).replace("int8", "int3"))
        np.savez(weights_path, **state)
        with pytest.raises(ModelConfigError):
            DataVisT5.load(tmp_path / "ckpt")
