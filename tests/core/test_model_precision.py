"""DataVisT5 precision contract: per-call overrides, int8 checkpoints, guards.

Covers the product-level half of the precision policy (the tensor-level half
lives in ``tests/nn/test_precision.py``): config validation, the
``predict(precision=...)`` override, the training guard on quantized models,
and the headline persistence property — an int8-quantized model saved with
:meth:`DataVisT5.save` loads back **bitwise identical** (codes, scales,
dequantized masters and therefore predictions), in a checkpoint materially
smaller than the float64 one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DataVisT5Config, precision_compute_dtype, validate_precision
from repro.core.model import DataVisT5
from repro.errors import ModelConfigError

CORPUS = [
    "visualize bar select artist.country , count ( artist.country ) from artist",
    "how many artists joined after 1998 ?",
    "show the attendance of every exhibition by date",
]


def tiny_model(precision: str = "float64", seed: int = 0) -> DataVisT5:
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=32, max_target_length=16, max_decode_length=8, precision=precision, seed=seed
    )
    return DataVisT5.from_corpus(CORPUS, config=config, max_vocab_size=200)


class TestPrecisionConfig:
    def test_validate_precision(self):
        assert validate_precision("float64") == "float64"
        with pytest.raises(ModelConfigError):
            validate_precision("fp16")

    def test_compute_dtype_mapping(self):
        assert precision_compute_dtype("float64") == "float64"
        assert precision_compute_dtype("float32") == "float32"
        assert precision_compute_dtype("int8") == "float32"

    def test_config_rejects_unknown_precision(self):
        with pytest.raises(ModelConfigError):
            DataVisT5Config(precision="bf16")

    def test_int8_config_quantizes_at_construction(self):
        model = tiny_model(precision="int8")
        assert model.quantized


class TestPredictPrecision:
    def test_per_call_override_and_default(self):
        model = tiny_model()
        default = model.predict_batch(["how many artists ?"])
        fp32 = model.predict_batch(["how many artists ?"], precision="float32")
        assert isinstance(default[0], str) and isinstance(fp32[0], str)

    def test_int8_override_requires_quantized_weights(self):
        model = tiny_model()
        with pytest.raises(ModelConfigError):
            model.predict("how many artists ?", precision="int8")
        with pytest.raises(ModelConfigError):
            model.resolve_precision("int8")
        model.quantize_int8()
        assert model.resolve_precision() == "int8"
        assert isinstance(model.predict("how many artists ?"), str)

    def test_unknown_precision_rejected(self):
        model = tiny_model()
        with pytest.raises(ModelConfigError):
            model.predict("how many artists ?", precision="float16")


class TestSharedConfigIsolation:
    def test_quantize_does_not_mutate_shared_config(self):
        config = DataVisT5Config.from_preset(
            "tiny", max_input_length=32, max_target_length=16, max_decode_length=8
        )
        first = DataVisT5.from_corpus(CORPUS, config=config, max_vocab_size=200)
        second = DataVisT5.from_corpus(CORPUS, config=config, max_vocab_size=200)
        first.quantize_int8()
        assert first.config.precision == "int8"
        assert config.precision == "float64"
        assert second.resolve_precision() == "float64"
        assert isinstance(second.predict("how many artists ?"), str)


class TestQuantizedTrainingGuard:
    def test_train_step_raises_on_quantized(self):
        model = tiny_model().quantize_int8()
        batch = model.collate(["how many artists ?"], ["3"])
        optimizer = model.make_optimizer(total_steps=1)
        with pytest.raises(ModelConfigError):
            model.train_step(batch, optimizer)


class TestInt8Checkpoints:
    def test_save_load_round_trips_bitwise(self, tmp_path):
        model = tiny_model(seed=3).quantize_int8()
        sources = ["how many artists ?", "show the attendance by date"]
        before = model.predict_batch(sources)
        model.save(tmp_path / "int8")
        loaded = DataVisT5.load(tmp_path / "int8")
        assert loaded.quantized
        assert loaded.config.precision == "int8"
        own = dict(model.model.named_parameters())
        other = dict(loaded.model.named_parameters())
        assert own.keys() == other.keys()
        for name, parameter in own.items():
            np.testing.assert_array_equal(parameter.data, other[name].data, err_msg=name)
        for name, module in model.model.named_modules():
            if getattr(module, "weight_q", None) is not None:
                twin = dict(loaded.model.named_modules())[name]
                np.testing.assert_array_equal(module.weight_q, twin.weight_q, err_msg=name)
                np.testing.assert_array_equal(module.weight_scale, twin.weight_scale, err_msg=name)
        assert loaded.predict_batch(sources) == before

    def test_int8_checkpoint_is_smaller(self, tmp_path):
        model = tiny_model(seed=4)
        model.save(tmp_path / "fp64")
        model.quantize_int8()
        model.save(tmp_path / "int8")
        fp64_bytes = (tmp_path / "fp64" / "weights.npz").stat().st_size
        int8_bytes = (tmp_path / "int8" / "weights.npz").stat().st_size
        # The benchmark records the exact ratio (>= 3x at its scale); at the
        # tiny test scale per-entry zip overhead eats into it, so just assert
        # a material reduction.
        assert int8_bytes < fp64_bytes / 2

    def test_float64_checkpoints_still_load(self, tmp_path):
        model = tiny_model(seed=5)
        expected = model.predict("how many artists ?")
        model.save(tmp_path / "fp64")
        loaded = DataVisT5.load(tmp_path / "fp64")
        assert not loaded.quantized
        assert loaded.predict("how many artists ?") == expected
