"""Tests for the DataVisT5 model wrapper, pre-training and fine-tuning loops."""

import numpy as np
import pytest

from repro.core import (
    DataVisT5,
    DataVisT5Config,
    HybridPretrainer,
    MultiTaskFineTuner,
    SingleTaskFineTuner,
    TrainingConfig,
)
from repro.datasets.corpus import PretrainingCorpus, Seq2SeqExample
from repro.errors import ModelConfigError


def tiny_config(**overrides) -> DataVisT5Config:
    return DataVisT5Config.from_preset("tiny", max_input_length=32, max_target_length=16, max_decode_length=12, **overrides)


@pytest.fixture(scope="module")
def toy_pairs() -> list[Seq2SeqExample]:
    pairs = []
    for index in range(12):
        pairs.append(
            Seq2SeqExample(
                source=f"<NL> show item {index % 3} <schema> | db | t : t.a",
                target=f"<VQL> visualize bar select t.a , count ( t.a ) from t group by t.a",
                task="text_to_vis",
            )
        )
    return pairs


@pytest.fixture(scope="module")
def toy_model(toy_pairs) -> DataVisT5:
    texts = [pair.source for pair in toy_pairs] + [pair.target for pair in toy_pairs]
    return DataVisT5.from_corpus(texts, config=tiny_config())


class TestDataVisT5Model:
    def test_from_corpus_builds_vocab(self, toy_model):
        assert len(toy_model.tokenizer.vocab) > 40
        assert toy_model.num_parameters() > 0

    def test_config_presets(self):
        assert DataVisT5Config.from_preset("large").d_model > DataVisT5Config.from_preset("base").d_model
        with pytest.raises(ModelConfigError):
            DataVisT5Config.from_preset("gigantic")

    def test_train_step_reduces_loss(self, toy_model, toy_pairs):
        model = toy_model.clone_architecture()
        optimizer = model.make_optimizer(total_steps=30, learning_rate=5e-3)
        batch = model.collate([p.source for p in toy_pairs[:8]], [p.target for p in toy_pairs[:8]])
        losses = [model.train_step(batch, optimizer) for _ in range(15)]
        assert losses[-1] < losses[0]

    def test_compute_loss_and_predict(self, toy_model, toy_pairs):
        loss = toy_model.compute_loss([toy_pairs[0].source], [toy_pairs[0].target])
        assert np.isfinite(loss)
        prediction = toy_model.predict(toy_pairs[0].source)
        assert isinstance(prediction, str)

    def test_predict_batch_length(self, toy_model, toy_pairs):
        predictions = toy_model.predict_batch([p.source for p in toy_pairs[:3]])
        assert len(predictions) == 3

    def test_save_load_roundtrip(self, toy_model, toy_pairs, tmp_path):
        directory = tmp_path / "checkpoint"
        toy_model.save(directory)
        restored = DataVisT5.load(directory)
        original_loss = toy_model.compute_loss([toy_pairs[0].source], [toy_pairs[0].target])
        restored_loss = restored.compute_loss([toy_pairs[0].source], [toy_pairs[0].target])
        assert restored_loss == pytest.approx(original_loss, abs=1e-9)

    def test_load_missing_files(self, tmp_path):
        with pytest.raises(ModelConfigError):
            DataVisT5.load(tmp_path / "nope")

    def test_copy_weights(self, toy_model):
        clone = toy_model.clone_architecture()
        clone.copy_weights_from(toy_model)
        source_state = toy_model.model.state_dict()
        clone_state = clone.model.state_dict()
        for name in source_state:
            np.testing.assert_allclose(source_state[name], clone_state[name])


class TestHybridPretraining:
    def test_pretraining_mixes_objectives_and_learns(self, toy_pairs):
        corpus = PretrainingCorpus(bdc_pairs=toy_pairs, mlm_texts=[pair.target for pair in toy_pairs])
        model = DataVisT5.from_corpus(corpus.all_texts(), config=tiny_config())
        trainer = HybridPretrainer(model, corpus, TrainingConfig(num_epochs=2, batch_size=6, learning_rate=5e-3))
        report = trainer.train()
        assert report.num_bdc_examples > 0
        assert report.num_mlm_examples > 0
        assert report.epoch_losses[-1] < report.epoch_losses[0] * 1.5
        assert report.num_steps == len(report.step_losses)

    def test_empty_corpus_rejected(self, toy_model):
        with pytest.raises(ModelConfigError):
            HybridPretrainer(toy_model, PretrainingCorpus(), TrainingConfig())


class TestFineTuning:
    def test_single_task_finetuning(self, toy_pairs):
        texts = [p.source for p in toy_pairs] + [p.target for p in toy_pairs]
        model = DataVisT5.from_corpus(texts, config=tiny_config())
        report = SingleTaskFineTuner(model, toy_pairs, TrainingConfig(num_epochs=2, batch_size=6)).train()
        assert report.task_counts["text_to_vis"] > 0
        assert len(report.epoch_losses) == 2

    def test_single_task_requires_examples(self, toy_model):
        with pytest.raises(ModelConfigError):
            SingleTaskFineTuner(toy_model, [], TrainingConfig())

    def test_multi_task_temperature_mixing_counts(self, toy_pairs):
        other_task = [
            Seq2SeqExample(source=p.source, target="<NL> a bar chart of items", task="vis_to_text") for p in toy_pairs[:3]
        ]
        texts = [p.source for p in toy_pairs] + [p.target for p in toy_pairs]
        model = DataVisT5.from_corpus(texts, config=tiny_config())
        tuner = MultiTaskFineTuner(
            model,
            {"text_to_vis": toy_pairs, "vis_to_text": other_task},
            TrainingConfig(num_epochs=1, batch_size=6),
            examples_per_epoch=30,
        )
        report = tuner.train()
        assert set(report.task_counts) == {"text_to_vis", "vis_to_text"}
        # Temperature mixing up-samples the small task above its proportional share (3/15).
        assert report.task_counts["vis_to_text"] / sum(report.task_counts.values()) > 0.1

    def test_multi_task_requires_non_empty(self, toy_model):
        with pytest.raises(ModelConfigError):
            MultiTaskFineTuner(toy_model, {"a": []})
