"""Tests for span corruption, the BDC objective and batch collation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batching import collate_text_pairs, collate_token_pairs, iterate_minibatches, pad_sequences
from repro.core.objectives import SpanCorruptionConfig, bdc_pair_to_example, span_corruption
from repro.datasets.corpus import Seq2SeqExample
from repro.errors import ModelConfigError


class TestSpanCorruption:
    def test_sentinels_in_input_and_target(self, tiny_tokenizer):
        text = "visualize bar select artist.country , count ( artist.country ) from artist group by artist.country"
        token_ids = tiny_tokenizer.encode(text)
        corrupted, target = span_corruption(token_ids, tiny_tokenizer, rng=0)
        sentinel_ids = {tiny_tokenizer.sentinel_id(i) for i in range(tiny_tokenizer.num_sentinels)}
        assert sentinel_ids & set(corrupted)
        assert sentinel_ids & set(target)

    def test_input_shorter_than_original(self, tiny_tokenizer):
        token_ids = tiny_tokenizer.encode("visualize bar select artist.country from artist group by artist.country")
        corrupted, _ = span_corruption(token_ids, tiny_tokenizer, rng=1)
        assert len(corrupted) < len(token_ids) + 2

    def test_reconstruction_preserves_tokens(self, tiny_tokenizer):
        """Input non-sentinel tokens plus target non-sentinel tokens recover the original multiset."""
        text = "visualize bar select artist.country , count ( artist.country ) from artist"
        token_ids = [i for i in tiny_tokenizer.encode(text) if i != tiny_tokenizer.vocab.eos_id]
        corrupted, target = span_corruption(token_ids, tiny_tokenizer, rng=2)
        sentinel_ids = {tiny_tokenizer.sentinel_id(i) for i in range(tiny_tokenizer.num_sentinels)}
        eos = tiny_tokenizer.vocab.eos_id
        kept = [i for i in corrupted if i not in sentinel_ids and i != eos]
        recovered = [i for i in target if i not in sentinel_ids and i != eos]
        assert sorted(kept + recovered) == sorted(token_ids)

    def test_empty_input(self, tiny_tokenizer):
        corrupted, target = span_corruption([], tiny_tokenizer, rng=0)
        assert corrupted == [tiny_tokenizer.vocab.eos_id]

    def test_deterministic_given_rng(self, tiny_tokenizer):
        token_ids = tiny_tokenizer.encode("visualize bar select artist.country from artist")
        assert span_corruption(token_ids, tiny_tokenizer, rng=5) == span_corruption(token_ids, tiny_tokenizer, rng=5)

    def test_invalid_config(self):
        with pytest.raises(ModelConfigError):
            SpanCorruptionConfig(corruption_rate=0.0)
        with pytest.raises(ModelConfigError):
            SpanCorruptionConfig(mean_span_length=0.5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=60))
    def test_never_crashes_on_any_length(self, tiny_tokenizer, length):
        token_ids = list(np.random.default_rng(length).integers(40, 60, size=length))
        corrupted, target = span_corruption(token_ids, tiny_tokenizer, rng=length)
        assert corrupted and target


class TestBDCObjective:
    def test_swap_probability_extremes(self):
        pair = Seq2SeqExample(source="src", target="tgt", task="demo")
        assert bdc_pair_to_example(pair, rng=0, swap_probability=0.0).source == "src"
        assert bdc_pair_to_example(pair, rng=0, swap_probability=1.0).source == "tgt"

    def test_roughly_half_swapped(self):
        pair = Seq2SeqExample(source="src", target="tgt", task="demo")
        rng = np.random.default_rng(0)
        swapped = sum(bdc_pair_to_example(pair, rng=rng).source == "tgt" for _ in range(400))
        assert 120 < swapped < 280


class TestBatching:
    def test_pad_sequences_shape_and_padding(self):
        array = pad_sequences([[1, 2, 3], [4]], pad_id=0)
        assert array.shape == (2, 3)
        assert array[1, 1] == 0

    def test_pad_sequences_max_length(self):
        array = pad_sequences([[1, 2, 3, 4]], pad_id=0, max_length=2)
        assert array.shape == (1, 2)

    def test_pad_empty_rejected(self):
        with pytest.raises(ModelConfigError):
            pad_sequences([], pad_id=0)

    def test_collate_text_pairs(self, tiny_tokenizer):
        batch = collate_text_pairs(["visualize bar", "visualize bar select artist.country"], ["<Answer> 3", "<Answer> 4"], tiny_tokenizer)
        assert batch.input_ids.shape[0] == 2
        assert batch.labels.shape[0] == 2

    def test_collate_length_mismatch(self, tiny_tokenizer):
        with pytest.raises(ModelConfigError):
            collate_text_pairs(["a"], ["b", "c"], tiny_tokenizer)

    def test_collate_token_pairs(self):
        batch = collate_token_pairs([[1, 2]], [[3]], pad_id=0)
        assert batch.input_ids.shape == (1, 2) and batch.labels.shape == (1, 1)

    def test_iterate_minibatches_covers_all(self):
        items = list(range(10))
        batches = list(iterate_minibatches(items, 3, rng=np.random.default_rng(0)))
        flattened = [item for batch in batches for item in batch]
        assert sorted(flattened) == items
        assert len(batches) == 4
