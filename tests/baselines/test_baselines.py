"""Tests for the baseline systems."""

import pytest

from repro.baselines import (
    FewShotRetrievalTextToVis,
    NcNetTextToVis,
    NeuralTextGeneration,
    RetrievalTextToVis,
    RuleBasedTextToVis,
    Seq2SeqTextGeneration,
    Seq2VisBaseline,
    TransformerTextToVis,
    ZeroShotHeuristicGeneration,
    lora_style_parameters,
)
from repro.core import DataVisT5Config, TrainingConfig
from repro.datasets import generate_nvbench
from repro.datasets.corpus import Seq2SeqExample, nvbench_to_vis_to_text_pair
from repro.vql import parse_dv_query
from repro.vql.validation import validate_dv_query


@pytest.fixture(scope="module")
def nvbench_small(small_pool):
    return generate_nvbench(small_pool, examples_per_database=6, seed=0)


@pytest.fixture(scope="module")
def train_test(nvbench_small):
    examples = nvbench_small.examples
    return examples[: len(examples) - 6], examples[-6:]


def tiny_training():
    return TrainingConfig(num_epochs=1, batch_size=8, learning_rate=5e-3)


def tiny_model_config():
    return DataVisT5Config.from_preset("tiny", max_input_length=96, max_target_length=48, max_decode_length=32)


class TestRuleBasedTextToVis:
    def test_predictions_parse_and_validate(self, train_test, small_pool, nvbench_small):
        baseline = RuleBasedTextToVis()
        baseline.fit(train_test[0], small_pool)
        for example in train_test[1]:
            schema = small_pool.get(example.db_id).schema
            predicted = baseline.predict(example.question, schema)
            validate_dv_query(parse_dv_query(predicted), schema, strict_types=False)

    def test_chart_keyword_detection(self, small_pool):
        baseline = RuleBasedTextToVis()
        schema = small_pool.get("theme_gallery").schema
        assert "visualize pie" in baseline.predict("show a pie chart of countries in artist", schema)
        assert "visualize line" in baseline.predict("show the trend of ages in artist", schema)

    def test_order_detection(self, small_pool):
        baseline = RuleBasedTextToVis()
        schema = small_pool.get("theme_gallery").schema
        predicted = baseline.predict("number of artists per country , from high to low", schema)
        assert predicted.endswith("desc")


class TestRetrievalBaselines:
    def test_retrieval_predicts_valid_queries(self, train_test, small_pool):
        baseline = RetrievalTextToVis()
        baseline.fit(train_test[0], small_pool)
        for example in train_test[1][:4]:
            schema = small_pool.get(example.db_id).schema
            predicted = baseline.predict(example.question, schema)
            query = parse_dv_query(predicted)
            validate_dv_query(query, schema, strict_types=False)

    def test_retrieve_returns_most_similar_first(self, train_test, small_pool):
        baseline = RetrievalTextToVis()
        baseline.fit(train_test[0], small_pool)
        anchor = train_test[0][0]
        retrieved = baseline.retrieve(anchor.question, top_k=3)
        assert retrieved[0].question == anchor.question

    def test_unfit_baseline_raises(self, small_pool):
        with pytest.raises(RuntimeError):
            RetrievalTextToVis().predict("anything", small_pool.get("inn").schema)

    def test_few_shot_variant_predicts_parseable_text(self, train_test, small_pool):
        baseline = FewShotRetrievalTextToVis()
        baseline.fit(train_test[0], small_pool)
        example = train_test[1][0]
        predicted = baseline.predict(example.question, small_pool.get(example.db_id).schema)
        parse_dv_query(predicted)


class TestNeuralBaselines:
    def test_seq2vis_trains_and_predicts(self, train_test, small_pool):
        baseline = Seq2VisBaseline(training=tiny_training())
        baseline.fit(train_test[0][:24], small_pool)
        example = train_test[1][0]
        prediction = baseline.predict(example.question, small_pool.get(example.db_id).schema)
        assert isinstance(prediction, str)

    def test_transformer_baseline_with_warm_start(self, train_test, small_pool):
        baseline = TransformerTextToVis(tiny_model_config(), tiny_training(), warm_start="queries")
        baseline.fit(train_test[0][:24], small_pool)
        example = train_test[1][0]
        assert isinstance(baseline.predict(example.question, small_pool.get(example.db_id).schema), str)

    def test_lora_style_trains_fewer_parameters(self, train_test, small_pool):
        baseline = TransformerTextToVis(tiny_model_config(), tiny_training())
        baseline.fit(train_test[0][:12], small_pool)
        subset = lora_style_parameters(baseline.model)
        assert 0 < len(subset) < len(baseline.model.model.parameters())

    def test_ncnet_constrained_decoding_stays_in_schema_vocab(self, train_test, small_pool):
        baseline = NcNetTextToVis(tiny_model_config(), tiny_training())
        baseline.fit(train_test[0][:12], small_pool)
        example = train_test[1][0]
        schema = small_pool.get(example.db_id).schema
        prediction = baseline.predict(example.question, schema)
        allowed_words = set()
        for table in schema.tables:
            allowed_words.add(table.name)
            allowed_words.update(column.name for column in table.columns)
            allowed_words.update(f"{table.name}.{column.name}" for column in table.columns)
        from repro.baselines.ncnet import _KEYWORDS

        allowed_words.update(_KEYWORDS)
        for token in prediction.split():
            assert token in allowed_words or len(token) <= 2 or token.startswith("<")

    def test_generation_baselines_train_and_predict(self, nvbench_small, small_pool):
        pairs = [nvbench_to_vis_to_text_pair(e, small_pool) for e in nvbench_small.examples[:20]]
        for baseline in (Seq2SeqTextGeneration(training=tiny_training()), NeuralTextGeneration(tiny_model_config(), tiny_training())):
            baseline.fit(pairs)
            assert isinstance(baseline.predict(pairs[0].source), str)


class TestZeroShotHeuristic:
    def test_describes_query_inputs(self):
        baseline = ZeroShotHeuristicGeneration()
        source = "<VQL> visualize bar select t.a , count ( t.a ) from t group by t.a order by t.a desc <schema> | db | t : t.a"
        description = baseline.predict(source)
        assert "bar chart" in description and "descending" in description

    def test_answers_structure_questions_from_table(self):
        baseline = ZeroShotHeuristicGeneration()
        source = (
            "<Question> how many parts are there in the chart ? <VQL> visualize bar select t.a , count ( t.a ) from t group by t.a "
            "<Table> | col : a | b row 1 : x | 3 row 2 : y | 5"
        )
        assert baseline.predict(source) == "2"
        largest = baseline.predict(source.replace("how many parts are there in the chart ?", "what is the value of the largest part in the chart ?"))
        assert largest == "5"

    def test_suitability_answers_yes(self):
        baseline = ZeroShotHeuristicGeneration()
        assert baseline.predict("<Question> is this dv suitable for this given dataset ? <VQL> visualize bar select a , b from t") == "Yes"

    def test_table_description(self):
        baseline = ZeroShotHeuristicGeneration()
        description = baseline.predict("<Table> | col : name | year row 1 : alpha | 2010 row 2 : beta | 2011")
        assert "name" in description
