"""Tests for the vocabulary."""

import pytest

from repro.errors import TokenizationError
from repro.tokenization import PAD_TOKEN, UNK_TOKEN, Vocabulary, sentinel_token


class TestVocabularyBasics:
    def test_default_specials_present(self):
        vocab = Vocabulary()
        assert PAD_TOKEN in vocab
        assert sentinel_token(0) in vocab
        assert vocab.pad_id == 0

    def test_add_token_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add_token("hello")
        second = vocab.add_token("hello")
        assert first == second

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.token_to_id("never-seen") == vocab.unk_id

    def test_id_to_token_roundtrip(self):
        vocab = Vocabulary(["alpha", "beta"])
        assert vocab.id_to_token(vocab.token_to_id("alpha")) == "alpha"

    def test_id_out_of_range(self):
        vocab = Vocabulary()
        with pytest.raises(TokenizationError):
            vocab.id_to_token(len(vocab) + 5)


class TestVocabularyBuild:
    def test_frequency_and_cap(self):
        corpus = [["a", "a", "b"], ["a", "c"]]
        vocab = Vocabulary.build(corpus, max_size=2)
        assert "a" in vocab and "b" in vocab
        assert "c" not in vocab

    def test_min_frequency(self):
        vocab = Vocabulary.build([["x", "x"], ["y"]], min_frequency=2)
        assert "x" in vocab
        assert "y" not in vocab

    def test_deterministic_tie_break(self):
        first = Vocabulary.build([["b", "a"]]).tokens()
        second = Vocabulary.build([["a", "b"]]).tokens()
        assert first == second


class TestVocabularyPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        vocab = Vocabulary(["alpha", "beta"])
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = Vocabulary.load(path)
        assert loaded.tokens() == vocab.tokens()

    def test_load_rejects_invalid(self, tmp_path):
        path = tmp_path / "vocab.json"
        path.write_text('{"tokens": []}', encoding="utf-8")
        with pytest.raises(TokenizationError):
            Vocabulary.load(path)
