"""Tests for the DataVisT5 tokenizer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TokenizationError
from repro.tokenization import DataVisTokenizer, NL_TAG, VQL_TAG, Vocabulary, sentinel_token


class TestTextToTokens:
    def test_special_tokens_kept_whole(self, tiny_tokenizer):
        tokens = tiny_tokenizer.text_to_tokens(f"{NL_TAG} show artists {VQL_TAG} visualize bar")
        assert NL_TAG in tokens and VQL_TAG in tokens

    def test_identifiers_kept_whole(self, tiny_tokenizer):
        tokens = tiny_tokenizer.text_to_tokens("count ( artist.country )")
        assert "artist.country" in tokens

    def test_sentinel_recognised(self, tiny_tokenizer):
        tokens = tiny_tokenizer.text_to_tokens("visualize <extra_id_0> select")
        assert "<extra_id_0>" in tokens


class TestEncodeDecode:
    def test_roundtrip_in_vocab_text(self, tiny_tokenizer):
        text = "visualize bar select artist.country , count ( artist.country ) from artist"
        decoded = tiny_tokenizer.decode(tiny_tokenizer.encode(text))
        assert decoded == text

    def test_eos_appended(self, tiny_tokenizer):
        ids = tiny_tokenizer.encode("visualize bar")
        assert ids[-1] == tiny_tokenizer.vocab.eos_id

    def test_max_length_truncates(self, tiny_tokenizer):
        ids = tiny_tokenizer.encode("visualize bar select artist.country from artist", max_length=3)
        assert len(ids) == 3
        assert ids[-1] == tiny_tokenizer.vocab.eos_id

    def test_invalid_max_length(self, tiny_tokenizer):
        with pytest.raises(TokenizationError):
            tiny_tokenizer.encode("abc", max_length=0)

    def test_character_fallback_for_unknown_words(self, tiny_tokenizer):
        ids = tiny_tokenizer.encode("zzzqqq", add_eos=False)
        # The fallback spells the word out character by character.
        assert len(ids) > 1

    def test_decode_skips_padding(self, tiny_tokenizer):
        ids = tiny_tokenizer.encode("visualize bar") + [tiny_tokenizer.vocab.pad_id] * 3
        assert tiny_tokenizer.decode(ids) == "visualize bar"


class TestSentinels:
    def test_sentinel_ids_exist(self, tiny_tokenizer):
        assert tiny_tokenizer.num_sentinels >= 16
        assert tiny_tokenizer.sentinel_id(0) == tiny_tokenizer.vocab.token_to_id(sentinel_token(0))

    def test_missing_sentinel_raises(self):
        tokenizer = DataVisTokenizer(Vocabulary(include_default_specials=False))
        with pytest.raises(TokenizationError):
            tokenizer.sentinel_id(0)


class TestBuildFromCorpus:
    def test_vocab_covers_corpus(self):
        corpus = ["visualize bar select a from t", "visualize pie select b from t"]
        tokenizer = DataVisTokenizer.build_from_corpus(corpus)
        for text in corpus:
            assert tokenizer.decode(tokenizer.encode(text)) == text

    @given(st.text(alphabet="abcxyz ._0123456789", min_size=1, max_size=40))
    def test_encode_never_crashes(self, text):
        tokenizer = DataVisTokenizer.build_from_corpus(["abc xyz 0 1 2 . _"])
        ids = tokenizer.encode(text)
        assert isinstance(ids, list)
        assert all(0 <= token_id < len(tokenizer.vocab) for token_id in ids)
