"""Serving-layer precision plumbing: registry knob, pipeline engines, server.

The policy must thread intact from config dicts down to the DataVisT5
backend: ``{"type": "neural", "precision": ...}`` registry specs,
``PipelineConfig.precision`` on shared-model pipelines, the worker engines
spawned for the async server, and the ``ServerConfig.precision`` deployment
override.  Misconfiguration must fail structurally at construction — validation errors
for unknown modes, and an immediate rejection (never a crashed loop or a
stream of per-request failures) when int8 is requested of unquantized
weights.
"""

from __future__ import annotations

import pytest

from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.errors import ModelConfigError
from repro.serving import Pipeline, PipelineConfig, Request, ServerConfig, serve_requests
from repro.serving.registry import build_generation, build_text_to_vis

CORPUS = [
    "<Question> how many parts are there ? <Answer> 3",
    "visualize bar select artist.country , count ( artist.country ) from artist",
]


def tiny_model(seed: int = 0) -> DataVisT5:
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=32, max_target_length=16, max_decode_length=8, seed=seed
    )
    return DataVisT5.from_corpus(CORPUS, config=config, max_vocab_size=200)


def qa_request() -> Request:
    return Request(task="fevisqa", question="how many parts are there ?", table="a | 1")


class TestRegistryPrecision:
    def test_neural_families_accept_precision(self):
        assert build_text_to_vis({"type": "neural", "precision": "float32"}).precision == "float32"
        assert build_generation({"type": "neural", "precision": "int8"}).precision == "int8"

    def test_non_neural_families_reject_precision(self):
        with pytest.raises(ModelConfigError):
            build_text_to_vis({"type": "template", "precision": "float32"})
        with pytest.raises(ModelConfigError):
            build_generation({"type": "heuristics", "precision": "float64"})

    def test_registry_validates_precision_value(self):
        with pytest.raises(ModelConfigError):
            build_text_to_vis({"type": "neural", "precision": "fp16"})


class TestPipelinePrecision:
    def test_config_validates(self):
        with pytest.raises(ModelConfigError):
            PipelineConfig(precision="float16")
        with pytest.raises(ModelConfigError):
            Pipeline.from_config({"pipeline": {"precision": "bf16"}})

    def test_engines_carry_precision(self):
        pipeline = Pipeline.from_model(tiny_model(), config=PipelineConfig(precision="float32"))
        for engine in pipeline._engines.values():
            assert engine.precision == "float32"

    def test_spawn_engines_override(self):
        pipeline = Pipeline.from_model(tiny_model())
        default = pipeline.spawn_engines()
        overridden = pipeline.spawn_engines(precision="float32")
        assert all(engine.precision is None for engine in default.values())
        assert all(engine.precision == "float32" for engine in overridden.values())
        with pytest.raises(ModelConfigError):
            pipeline.spawn_engines(precision="fp8")

    def test_float32_pipeline_serves(self):
        pipeline = Pipeline.from_model(tiny_model(), config=PipelineConfig(precision="float32"))
        response = pipeline.submit(qa_request())
        assert response.ok
        assert isinstance(response.output, str)

    def test_int8_pipeline_over_quantized_model(self):
        pipeline = Pipeline.from_model(tiny_model().quantize_int8(), config=PipelineConfig(precision="int8"))
        assert pipeline.submit(qa_request()).ok


class TestContinuousStaticAgreement:
    """Regression suite for the serving-vs-decode agreement gap.

    Both int8 serving paths — the token-level continuous batching loop and
    the static ``predict_batch`` path — run float32 compute over the same
    dequantized masters, so their outputs must be *identical*, not merely
    close.  A drift here is what once made ``BENCH_serving.json`` disagree
    with ``BENCH_decode.json`` on the same quantized weights.
    """

    REQUESTS = [
        Request(task="fevisqa", question="how many parts are there ?", table="a | 1"),
        Request(task="fevisqa", question="how many artists are there ?", table="b | 2"),
        Request(task="vis_to_text", chart="Visualize BAR SELECT a , b FROM t"),
    ]

    @pytest.mark.parametrize("calibrated", [False, True])
    def test_continuous_int8_matches_static_int8(self, calibrated):
        model = tiny_model()
        if calibrated:
            model.calibrate(CORPUS, n=2, target_agreement=0.9)
        model.quantize_int8()
        static = Pipeline.from_model(model, config=PipelineConfig(precision="int8", continuous=False))
        continuous = Pipeline.from_model(model, config=PipelineConfig(precision="int8", continuous=True))
        static_outputs = [r.output for r in static.serve(list(self.REQUESTS))]
        continuous_outputs = [r.output for r in continuous.serve(list(self.REQUESTS))]
        assert static_outputs == continuous_outputs

    def test_continuous_int8_matches_direct_predict(self):
        model = tiny_model().quantize_int8()
        pipeline = Pipeline.from_model(model, config=PipelineConfig(precision="int8", continuous=True))
        request = self.REQUESTS[0]
        prepared = pipeline.prepare(request)
        direct = model.predict_batch([prepared.source], precision="int8")
        from repro.encoding.sequences import strip_modality_tags

        assert pipeline.submit(request).output == strip_modality_tags(direct[0])


class TestServerPrecision:
    def test_server_config_validates(self):
        with pytest.raises(ModelConfigError):
            ServerConfig(precision="double")

    def test_server_precision_override_serves(self):
        pipeline = Pipeline.from_model(tiny_model())
        responses, stats = serve_requests(
            pipeline, [qa_request()], config=ServerConfig(precision="float32", num_workers=1)
        )
        assert responses[0].ok
        assert stats["requests"]["completed"] == 1

    def test_precision_override_namespaces_the_response_cache(self):
        # A float32-override server sharing a pipeline with float64 callers
        # must neither replay their cached outputs nor poison their cache.
        pipeline = Pipeline.from_model(tiny_model())
        request = qa_request()
        baseline = pipeline.submit(request)
        assert not baseline.cached
        responses, stats = serve_requests(
            pipeline, [qa_request()], config=ServerConfig(precision="float32", num_workers=1)
        )
        assert responses[0].ok
        assert stats["requests"]["cache_hits"] == 0  # fp64 entry not replayed
        assert not responses[0].cached
        assert pipeline.submit(qa_request()).cached  # fp64 entry still intact

    def test_int8_on_unquantized_model_fails_at_construction(self):
        # A deployment misconfiguration, not a runtime failure: the server
        # (and the pipeline) must refuse to come up, before any traffic.
        with pytest.raises(ModelConfigError, match="quantize"):
            serve_requests(
                Pipeline.from_model(tiny_model()),
                [qa_request()],
                config=ServerConfig(precision="int8", num_workers=1),
            )
        with pytest.raises(ModelConfigError, match="quantize"):
            Pipeline.from_model(tiny_model(), config=PipelineConfig(precision="int8"))
