"""Streaming equivalence suite: chunks reassemble to the sync response, bitwise.

The streaming contract has two halves.  The pure half is
:func:`~repro.serving.protocol.assemble_stream` — text chunks concatenate, a
non-final ``seq == 0`` chunk resets the buffer, and a stream must terminate
in exactly one final chunk — property-tested here without any model.  The
live half is the :meth:`~repro.serving.server.Server.stream` front-end over
a real retrieval-grounded ``corpus_qa`` pipeline: for *every* request —
fresh, cached, drafted-then-merged, or failing — the concatenation of the
streamed deltas must equal the non-streaming ``Response.output`` bitwise,
and failures must arrive as a terminal error chunk rather than a hang or a
truncated stream.  Random traces are drawn with Hypothesis from the corpus
vocabulary so cache hits, empty retrievals and divergent drafts all occur.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets.corpus import CorpusDocument, CorpusIndex
from repro.errors import CorpusEmptyError, ModelConfigError
from repro.serving import (
    ERROR_BACKEND,
    ERROR_CORPUS_EMPTY,
    ERROR_INDEX_MISMATCH,
    Pipeline,
    PipelineConfig,
    Request,
    Response,
    ResponseChunk,
    Server,
    ServerConfig,
    assemble_stream,
)

# -- the pure reassembly contract -------------------------------------------------------

text = st.text(max_size=60)


def final_chunk(output: str, seq: int, error: str | None = None) -> ResponseChunk:
    response = Response(task="corpus_qa", output="" if error else output, error=error, detail=error)
    return ResponseChunk(task="corpus_qa", seq=seq, final=True, response=response)


def split_chunks(draw, output: str, start_seq: int = 0) -> list[ResponseChunk]:
    chunks, seq, remaining = [], start_seq, output
    while remaining:
        take = draw(st.integers(1, len(remaining)))
        chunks.append(ResponseChunk(task="corpus_qa", seq=seq, text=remaining[:take]))
        remaining = remaining[take:]
        seq += 1
    return chunks


class TestAssembleStream:
    @settings(max_examples=200, deadline=None)
    @given(data=st.data(), output=text)
    def test_any_chunking_reassembles_bitwise(self, data, output):
        chunks = split_chunks(data.draw, output)
        response = assemble_stream(chunks + [final_chunk(output, len(chunks))])
        assert response.output == output

    @settings(max_examples=100, deadline=None)
    @given(data=st.data(), draft=text.filter(bool), output=text.filter(bool))
    def test_seq_zero_resets_the_buffer(self, data, draft, output):
        # a discarded draft followed by a seq-0 restart must leave no trace
        abandoned = split_chunks(data.draw, draft)
        replacement = split_chunks(data.draw, output)
        stream = abandoned + replacement + [final_chunk(output, len(replacement))]
        assert assemble_stream(stream).output == output

    def test_error_streams_skip_the_bitwise_check(self):
        # a terminal error chunk's empty output is returned as-is, even when
        # deltas were already streamed before the failure landed
        draft = ResponseChunk(task="corpus_qa", seq=0, text="partial ")
        response = assemble_stream([draft, final_chunk("", 1, error=ERROR_BACKEND)])
        assert response.error == ERROR_BACKEND
        assert response.output == ""

    def test_malformed_streams_raise(self):
        with pytest.raises(ModelConfigError, match="empty stream"):
            assemble_stream([])
        with pytest.raises(ModelConfigError, match="truncated"):
            assemble_stream([ResponseChunk(task="corpus_qa", seq=0, text="no final")])
        with pytest.raises(ModelConfigError, match="past its final chunk"):
            assemble_stream([final_chunk("", 0), ResponseChunk(task="corpus_qa", seq=1, text="x")])
        with pytest.raises(ModelConfigError, match="reassembly mismatch"):
            assemble_stream(
                [ResponseChunk(task="corpus_qa", seq=0, text="aaa"), final_chunk("bbb", 1)]
            )


# -- the live corpus-QA streaming front-end ---------------------------------------------

DOC_SPECS = (
    ("bar", "revenue", "region"),
    ("line", "temperature", "quarter"),
    ("scatter", "latency", "platform"),
    ("pie", "enrollment", "department"),
    ("area", "rainfall", "cohort"),
    ("heatmap", "throughput", "species"),
)
VOCABULARY = tuple(sorted({word for spec in DOC_SPECS for word in spec} | {"peak", "chart", "highest"}))


@pytest.fixture(scope="module")
def corpus_env() -> dict:
    documents = [
        CorpusDocument(
            doc_id=f"doc-{i}",
            title=f"{metric} by {dim}",
            chart=f"{chart} chart showing {metric} grouped by {dim} with the peak highlighted",
            table=f"{dim} | {metric}",
        )
        for i, (chart, metric, dim) in enumerate(DOC_SPECS)
    ]
    index = CorpusIndex(documents)
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=16, max_decode_length=12, seed=0
    )
    model = DataVisT5.from_corpus([d.text() for d in documents], config=config, max_vocab_size=400)
    pipeline = Pipeline.from_model(model, config=PipelineConfig(), corpus_index=index)
    return {"documents": documents, "index": index, "model": model, "pipeline": pipeline}


def assert_well_formed(chunks: list[ResponseChunk], request: Request) -> None:
    """The per-chunk contract: demux echo, consecutive seq (modulo resets), one final."""
    assert chunks, "a stream must never be empty"
    assert chunks[-1].final and chunks[-1].response is not None
    assert all(not chunk.final for chunk in chunks[:-1])
    expected_seq = 0
    for chunk in chunks[:-1]:
        assert chunk.task == request.task
        assert chunk.request_id == request.request_id
        if chunk.seq == 0:
            expected_seq = 0  # a reset restarts the count
        assert chunk.seq == expected_seq
        expected_seq += 1


def stream_and_compare(server: Server, request: Request):
    """One request through both front-ends; returns (chunks, streamed, sync)."""

    async def drive():
        chunks = [chunk async for chunk in server.stream(request)]
        sync = await server.submit(request)
        return chunks, sync

    return drive()


class TestServerStreaming:
    def test_reassembly_equals_sync_over_a_seeded_trace(self, corpus_env):
        documents = corpus_env["documents"]
        questions = [f"what does the {doc.title} chart show" for doc in documents[:4]]
        questions += ["highest peak overall", questions[0]]  # repeat: a cached stream

        async def drive() -> None:
            async with Server(corpus_env["pipeline"], ServerConfig(num_workers=2)) as server:
                for i, question in enumerate(questions):
                    request = Request(task="corpus_qa", question=question, request_id=f"t-{i}")
                    chunks = [chunk async for chunk in server.stream(request)]
                    assert_well_formed(chunks, request)
                    streamed = assemble_stream(chunks)
                    sync = await server.submit(request)
                    assert streamed.error is None and sync.error is None
                    assert streamed.output == sync.output
                    stages = (streamed.telemetry or {}).get("stages")
                    assert stages and stages["retrieval"]["documents"]

        asyncio.run(drive())

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_reassembly_equals_sync_over_random_traces(self, corpus_env, data):
        words = st.lists(st.sampled_from(VOCABULARY), min_size=1, max_size=6)
        questions = data.draw(st.lists(words.map(" ".join), min_size=1, max_size=3))

        async def drive() -> None:
            async with Server(corpus_env["pipeline"], ServerConfig(num_workers=2)) as server:
                for question in questions:
                    request = Request(task="corpus_qa", question=question)
                    chunks = [chunk async for chunk in server.stream(request)]
                    assert_well_formed(chunks, request)
                    streamed = assemble_stream(chunks)
                    sync = await server.submit(request)
                    assert streamed.error is None and sync.error is None
                    assert streamed.output == sync.output

        asyncio.run(drive())

    def test_index_mismatch_is_a_terminal_error_chunk(self, corpus_env):
        request = Request(
            task="corpus_qa", question="what is the peak", index="sha256:" + "0" * 64
        )

        async def drive() -> Response:
            async with Server(corpus_env["pipeline"], ServerConfig(num_workers=1)) as server:
                chunks = [chunk async for chunk in server.stream(request)]
                assert chunks[-1].final
                return assemble_stream(chunks)

        response = asyncio.run(drive())
        assert response.error == ERROR_INDEX_MISMATCH
        assert corpus_env["index"].fingerprint() in (response.detail or "")

    def test_matching_index_pin_streams_normally(self, corpus_env):
        request = Request(
            task="corpus_qa", question="pinned peak question", index=corpus_env["index"].fingerprint()
        )

        async def drive() -> Response:
            async with Server(corpus_env["pipeline"], ServerConfig(num_workers=1)) as server:
                return assemble_stream([chunk async for chunk in server.stream(request)])

        assert asyncio.run(drive()).error is None


class TestPipelineStreaming:
    def test_serve_streaming_matches_submit(self, corpus_env):
        pipeline = corpus_env["pipeline"]
        deltas: list[str] = []
        request = Request(task="corpus_qa", question="temperature by quarter peak")
        streamed = pipeline.serve_streaming(request, deltas.append)
        assert streamed.error is None
        assert streamed.output == pipeline.submit(request).output
        # the draft streamed during decode grounds in the top-ranked context;
        # the merge may replace it, but something must have streamed
        assert deltas

    def test_strict_false_contains_an_empty_corpus(self, corpus_env):
        empty = Pipeline.from_model(
            corpus_env["model"], config=PipelineConfig(), corpus_index=CorpusIndex([])
        )
        request = Request(task="corpus_qa", question="anything at all")
        response = empty.serve_streaming(request, lambda delta: None, strict=False)
        assert response.error == ERROR_CORPUS_EMPTY
        with pytest.raises(CorpusEmptyError):
            empty.serve_streaming(request, lambda delta: None)
