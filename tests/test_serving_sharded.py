"""Differential tests: the sharded tier is output-equivalent to the sync pipeline.

The process-sharded gateway forks worker processes, consistent-hashes
requests across them, coalesces duplicates, caches responses and composes
the deploy router's pinning rules — and none of that may be observable in
the responses.  For any mix of tasks, exact duplicates, deployment-pinned
requests and repeat (cached) traffic, ``ShardedServer.serve`` must return
the same responses as ``Pipeline.serve`` on the same checkpoint: same
output text, query AST, vega-lite spec, validity verdict, error code,
``cached`` flag and request id, in the same order.  Shard count is a pure
throughput knob (telemetry, which carries shard identity, is excluded from
``Response.__eq__`` by design).
"""

from __future__ import annotations

import pytest

from repro.deploy import ModelRegistry
from repro.errors import ModelConfigError
from repro.serving import Request, ShardConfig, ShardedServer

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def env(serving_model_env, tmp_path_factory) -> dict:
    tmp = tmp_path_factory.mktemp("sharded-eq")
    registry = ModelRegistry(tmp / "registry.json")
    registry.register_checkpoint("viz", serving_model_env["model"], tmp / "ckpt-v1")
    return {**serving_model_env, "registry": registry, "registry_path": tmp / "registry.json"}


def build_requests(env) -> list[Request]:
    """200+ mixed-task requests: all three tasks, ids, pins and duplicates."""
    pool, nvbench = env["pool"], env["nvbench"]
    requests: list[Request] = []
    for index, example in enumerate(nvbench.examples):
        schema = pool.get(example.db_id).schema
        requests.append(Request(task="text_to_vis", question=example.question, schema=schema))
        requests.append(Request(task="vis_to_text", chart=example.query, schema=schema))
        requests.append(
            Request(
                task="fevisqa",
                question="how many bars are there ?",
                chart=example.query,
                schema=schema,
            )
        )
        requests.append(
            Request(
                task="fevisqa",
                question=f"is group {index} the largest ?",
                chart=example.query,
                schema=schema,
            )
        )
        requests.append(
            Request(
                task="fevisqa",
                question=f"does series {index} trend upward ?",
                chart=example.query,
                schema=schema,
                request_id=f"req-{index}",
            )
        )
        requests.append(
            Request(
                task="fevisqa",
                question=f"which category ranks second in chart {index} ?",
                chart=example.query,
                schema=schema,
            )
        )
    # Deployment-pinned repeats of earlier requests: an explicit version pin
    # and a bare-name pin (resolved to the highest registered version).
    for example in nvbench.examples[:8]:
        schema = pool.get(example.db_id).schema
        requests.append(
            Request(task="text_to_vis", question=example.question, schema=schema, deployment="viz@1")
        )
        requests.append(
            Request(task="text_to_vis", question=example.question, schema=schema, deployment="viz")
        )
    # Duplicate storm: exact repeats must hit the cache/coalescing path on
    # the sharded tier and the pipeline's LRU on the sync tier — same flags.
    requests.extend(requests[:45])
    return requests


@pytest.fixture(scope="module")
def baseline(env) -> tuple[list[Request], list]:
    requests = build_requests(env)
    sync = env["registry"].build_pipeline("viz@1").serve(list(requests), strict=False)
    return requests, sync


class TestEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_sharded_matches_sync_pipeline(self, env, baseline, num_shards):
        requests, sync = baseline
        assert len(requests) >= 200
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(num_shards=num_shards)) as server:
            out = server.serve(list(requests))
            stats = server.stats()
        assert len(out) == len(sync)
        mismatches = [index for index, (a, b) in enumerate(zip(sync, out)) if a != b]
        assert mismatches == [], f"first mismatch at {mismatches[0]}: {sync[mismatches[0]]!r} vs {out[mismatches[0]]!r}"
        assert [r.cached for r in out] == [r.cached for r in sync]
        assert [r.request_id for r in out] == [r.request_id for r in sync]
        assert [r.error for r in out] == [r.error for r in sync]
        assert stats["requests"]["submitted"] == len(requests)
        assert stats["requests"]["completed"] == len(requests)
        assert sum(stats["requests"]["failed"].values()) == 0
        assert sum(stats["requests"]["rejected"].values()) == 0
        assert stats["restarts"] == 0  # happy path: nobody died

    def test_work_spreads_across_shards(self, env, baseline):
        requests, _ = baseline
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(num_shards=2)) as server:
            server.serve(list(requests))
            stats = server.stats()
        dispatched = {name: shard["dispatched"] for name, shard in stats["shards"].items()}
        assert all(count > 0 for count in dispatched.values()), dispatched

    def test_repeat_traffic_is_served_from_the_gateway_cache(self, env, baseline):
        requests, sync = baseline
        subset = requests[:20]
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(num_shards=2)) as server:
            first = server.serve(list(subset))
            second = server.serve(list(subset))
            stats = server.stats()
        assert all(response.cached for response in second)
        assert [r.output for r in second] == [r.output for r in first]
        assert [r.output for r in second] == [r.output for r in sync[: len(subset)]]
        assert stats["requests"]["cache_hits"] >= len(subset)

    def test_telemetry_names_the_serving_shard(self, env):
        pool, nvbench = env["pool"], env["nvbench"]
        example = nvbench.examples[0]
        request = Request(
            task="text_to_vis",
            question=example.question,
            schema=pool.get(example.db_id).schema,
        )
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(num_shards=2)) as server:
            response = server.submit(request)
            names = set(server.shard_pids())
        assert response.error is None
        assert response.telemetry is not None
        assert response.telemetry["shard"] in names
        assert response.telemetry["requeues"] == 0


class TestGatewaySemantics:
    def test_unknown_deployment_pin_is_invalid_request(self, env):
        pool, nvbench = env["pool"], env["nvbench"]
        example = nvbench.examples[0]
        schema = pool.get(example.db_id).schema
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(num_shards=1)) as server:
            missing_name = server.submit(
                Request(task="fevisqa", question="q ?", chart=example.query, schema=schema, deployment="nope@9")
            )
            missing_version = server.submit(
                Request(task="fevisqa", question="q ?", chart=example.query, schema=schema, deployment="viz@9")
            )
            stats = server.stats()
        assert missing_name.error == "invalid_request"
        assert missing_version.error == "invalid_request"
        assert stats["requests"]["failed"]["invalid_request"] == 2

    def test_non_request_submission_is_invalid_request(self, env):
        # A non-Request object must come back as a structured rejection, not
        # an AttributeError from dereferencing fields the object lacks.
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(num_shards=1)) as server:
            response = server.submit({"task": "fevisqa", "question": "q ?"})
        assert response.error == "invalid_request"
        assert "needs a Request" in response.detail
        assert response.request_id is None

    def test_submit_before_start_is_rejected(self, env):
        server = ShardedServer(env["registry_path"], "viz@1", ShardConfig(num_shards=1))
        with pytest.raises(ModelConfigError, match="not started"):
            server.submit(Request(task="fevisqa", question="q ?"))

    def test_config_validation(self):
        with pytest.raises(ModelConfigError):
            ShardConfig(num_shards=0)
        with pytest.raises(ModelConfigError):
            ShardConfig(heartbeat_timeout_ms=10.0, heartbeat_interval_ms=50.0)
        with pytest.raises(ModelConfigError):
            ShardConfig(batch_deadline_ms=0.0)
        with pytest.raises(ModelConfigError):
            ShardConfig(calibrated_service_ms="fast")  # type: ignore[arg-type]
