"""Tests for the asyncio serving front-end (``repro.serving.server``).

The headline property: firing 100+ overlapping ``submit()`` calls — mixed
tasks, duplicate cache-hitting requests, some past-deadline — produces
responses bitwise-equal to synchronous ``Pipeline.serve`` on the same
inputs, drops nothing, and rejects with structured errors rather than
exceptions.  The rest of the suite covers admission control (queue bounds,
deadlines, shutdown), coalescing, backend-failure containment, telemetry,
and the :class:`BatchWindow` flush policy.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.baselines import GENERATION_BASELINES
from repro.datasets import generate_nvbench
from repro.errors import ModelConfigError
from repro.serving import (
    ERROR_BACKEND,
    ERROR_DEADLINE,
    ERROR_INVALID_REQUEST,
    ERROR_QUEUE_FULL,
    ERROR_SHUTDOWN,
    BatchWindow,
    Pipeline,
    Request,
    Server,
    ServerConfig,
)


# -- fixtures -------------------------------------------------------------------------


@pytest.fixture(scope="module")
def nvbench(small_pool):
    return generate_nvbench(small_pool, examples_per_database=6, seed=0)


def _pipeline(small_pool, nvbench, **overrides) -> Pipeline:
    pipeline = Pipeline.from_config(
        {
            "text_to_vis": {"type": "retrieval", "revise": True},
            "vis_to_text": {"type": "heuristics"},
            "fevisqa": {"type": "heuristics"},
            "pipeline": overrides,
        }
    )
    pipeline.backend("text_to_vis").fit(nvbench.examples, small_pool)
    return pipeline


def _mixed_requests(small_pool, nvbench, count: int) -> list[Request]:
    """``count`` mixed-task requests cycling over the nvbench examples."""
    requests: list[Request] = []
    examples = nvbench.examples
    index = 0
    while len(requests) < count:
        example = examples[index % len(examples)]
        schema = small_pool.get(example.db_id).schema
        kind = index % 3
        if kind == 0:
            requests.append(Request(task="text_to_vis", question=example.question, schema=schema))
        elif kind == 1:
            requests.append(Request(task="vis_to_text", chart=example.query, schema=schema))
        else:
            requests.append(
                Request(task="fevisqa", question="How many parts are there ?", chart=example.query, schema=schema)
            )
        index += 1
    return requests


class _SlowCaption(GENERATION_BASELINES["heuristics"]):
    """A generation backend that burns wall-clock per batch (worker-side)."""

    def __init__(self, delay: float = 0.03):
        super().__init__()
        self.delay = delay

    def predict_many(self, sources):
        time.sleep(self.delay)
        return super().predict_many(sources)


class _ExplodingCaption(GENERATION_BASELINES["heuristics"]):
    def predict_many(self, sources):
        raise ModelConfigError("backend exploded")


def _comparable(response) -> dict:
    """A response's content, minus scheduling-dependent fields.

    ``cached`` depends on which duplicate won the race under concurrency and
    ``telemetry`` on queue/batch/worker placement, so equality with the
    synchronous path is over everything else.
    """
    payload = response.as_dict()
    payload.pop("cached")
    payload.pop("telemetry")
    return payload


# -- the concurrency stress property ----------------------------------------------------


class TestStress:
    def test_100_overlapping_submits_match_synchronous_serve(self, small_pool, nvbench):
        base = _mixed_requests(small_pool, nvbench, 40)
        # duplicates: every request again (cache/coalescing pressure), plus a
        # third copy of a handful, interleaved to overlap in flight.
        valid = base + base + base[:20]
        assert len(valid) >= 100
        # past-deadline submissions use questions no valid request shares, so
        # they can never be answered from the response cache by accident.
        doomed = [
            Request(task="fevisqa", question=f"doomed question {index} ?", chart=base[0].chart)
            for index in range(8)
        ]

        async def drive():
            server = Server(
                _pipeline(small_pool, nvbench),
                ServerConfig(max_batch=4, max_wait_ms=2.0, queue_size=512, num_workers=2),
            )
            async with server:
                tasks = [asyncio.create_task(server.submit(request)) for request in valid]
                tasks += [asyncio.create_task(server.submit(request, deadline=0)) for request in doomed]
                responses = await asyncio.gather(*tasks)
            return responses, server.stats()

        responses, stats = asyncio.run(drive())

        # no request is dropped, every slot holds a Response
        assert len(responses) == len(valid) + len(doomed)
        answered, rejected = responses[: len(valid)], responses[len(valid) :]

        # rejections are structured errors, not exceptions and not blanks
        assert [r.error for r in rejected] == [ERROR_DEADLINE] * len(doomed)
        assert all(not r.ok and r.output == "" and r.detail for r in rejected)

        # answered responses are bitwise-equal to the synchronous pipeline
        sync = _pipeline(small_pool, nvbench).serve(valid)
        assert [_comparable(r) for r in answered] == [_comparable(r) for r in sync]
        assert all(r.ok for r in answered)

        # accounting adds up: everything submitted is either completed or rejected
        counts = stats["requests"]
        assert counts["submitted"] == len(valid) + len(doomed)
        assert counts["completed"] == len(valid)
        assert counts["rejected"]["deadline_exceeded"] == len(doomed)
        assert counts["cache_hits"] + counts["coalesced"] > 0
        assert stats["batches"]["count"] > 0
        assert 0 < stats["batches"]["mean_padding_efficiency"] <= 1

    def test_telemetry_attached_per_request(self, small_pool, nvbench):
        requests = _mixed_requests(small_pool, nvbench, 12)

        async def drive():
            server = Server(_pipeline(small_pool, nvbench), ServerConfig(max_batch=4, num_workers=2))
            async with server:
                return await server.submit_all(requests)

        responses = asyncio.run(drive())
        for response in responses:
            assert response.telemetry is not None
            if not response.telemetry["cache_hit"] and not response.telemetry["coalesced"]:
                assert response.telemetry["queue_ms"] >= 0
                assert response.telemetry["batch_size"] >= 1
                assert response.telemetry["worker"] in (0, 1)


# -- admission control ------------------------------------------------------------------


class TestAdmissionControl:
    def test_queue_full_rejections_are_structured(self, small_pool, nvbench):
        pipeline = Pipeline(vis_to_text=_SlowCaption(0.02))
        requests = [
            Request(task="vis_to_text", chart=example.query)
            for example in nvbench.examples[:10]
        ]

        async def drive():
            server = Server(pipeline, ServerConfig(max_batch=2, queue_size=2, num_workers=1))
            async with server:
                return await server.submit_all(requests), server.stats()

        responses, stats = asyncio.run(drive())
        completed = [r for r in responses if r.ok]
        rejected = [r for r in responses if not r.ok]
        assert len(completed) + len(rejected) == len(requests)
        assert completed and rejected
        assert all(r.error == ERROR_QUEUE_FULL for r in rejected)
        assert stats["requests"]["rejected"]["queue_full"] == len(rejected)

    def test_deadline_expires_while_queued(self, small_pool, nvbench):
        pipeline = Pipeline(vis_to_text=_SlowCaption(0.08))
        first, second = (
            Request(task="vis_to_text", chart=example.query) for example in nvbench.examples[:2]
        )

        async def drive():
            server = Server(pipeline, ServerConfig(max_batch=1, max_wait_ms=0.0, queue_size=8, num_workers=1))
            async with server:
                blocker = asyncio.create_task(server.submit(first))
                await asyncio.sleep(0.01)  # let the blocker reach the worker
                doomed = await server.submit(second, deadline=0.02)
                ok = await blocker
            return ok, doomed

        ok, doomed = asyncio.run(drive())
        assert ok.ok
        assert doomed.error == ERROR_DEADLINE
        assert "deadline" in doomed.detail

    def test_non_positive_deadline_rejected_immediately(self, small_pool, nvbench):
        pipeline = _pipeline(small_pool, nvbench)
        request = Request(task="vis_to_text", chart=nvbench.examples[0].query)

        async def drive():
            async with Server(pipeline) as server:
                return await server.submit(request, deadline=0)

        assert asyncio.run(drive()).error == ERROR_DEADLINE

    def test_submit_after_stop_rejected(self, small_pool, nvbench):
        pipeline = _pipeline(small_pool, nvbench)
        request = Request(task="vis_to_text", chart=nvbench.examples[0].query)

        async def drive():
            server = Server(pipeline)
            async with server:
                inside = await server.submit(request)
            after = await server.submit(request)
            # a stopped server is single-use: restarting raises rather than
            # silently reviving queues without collectors
            try:
                await server.start()
                restarted = None
            except ModelConfigError as error:
                restarted = error
            return inside, after, restarted

        inside, after, restarted = asyncio.run(drive())
        assert inside.ok
        assert after.error == ERROR_SHUTDOWN
        assert after.telemetry is not None and not after.telemetry["cache_hit"]
        assert restarted is not None

    def test_unpreparable_request_is_structured_not_raised(self, small_pool, nvbench):
        # a rule-based text-to-vis backend cannot consume encoded schema text;
        # the synchronous strict path raises, the server answers with an error
        pipeline = _pipeline(small_pool, nvbench)
        request = Request(task="text_to_vis", question="show me a chart", schema="| db | t : t.c")

        async def drive():
            async with Server(pipeline) as server:
                return await server.submit(request)

        response = asyncio.run(drive())
        assert response.error == ERROR_INVALID_REQUEST
        assert "DatabaseSchema" in response.detail

    def test_unconfigured_task_is_structured_not_raised(self, small_pool, nvbench):
        pipeline = Pipeline.from_config({"vis_to_text": {"type": "heuristics"}})
        schema = small_pool.get(nvbench.examples[0].db_id).schema

        async def drive():
            async with Server(pipeline) as server:
                return await server.submit(
                    Request(task="text_to_vis", question="show me a chart", schema=schema)
                )

        response = asyncio.run(drive())
        assert response.error == ERROR_INVALID_REQUEST
        assert "no backend configured" in response.detail


# -- failure containment and coalescing ---------------------------------------------------


class TestFailureContainment:
    def test_backend_exception_becomes_error_response_and_loop_survives(self, small_pool, nvbench):
        exploding = Pipeline(vis_to_text=_ExplodingCaption(), fevisqa=GENERATION_BASELINES["heuristics"]())
        chart = nvbench.examples[0].query

        async def drive():
            async with Server(exploding, ServerConfig(max_batch=2)) as server:
                broken = await server.submit(Request(task="vis_to_text", chart=chart))
                # the loop and workers are still alive for other tasks
                alive = await server.submit(
                    Request(task="fevisqa", question="What type is this chart ?", chart=chart)
                )
            return broken, alive, server.stats()

        broken, alive, stats = asyncio.run(drive())
        assert broken.error == ERROR_BACKEND
        assert "exploded" in broken.detail
        assert alive.ok
        assert stats["requests"]["failed"]["backend_error"] == 1

    def test_concurrent_duplicates_coalesce_onto_one_forward_pass(self, small_pool, nvbench):
        pipeline = Pipeline(vis_to_text=_SlowCaption(0.02))
        request = Request(task="vis_to_text", chart=nvbench.examples[0].query)

        async def drive():
            server = Server(pipeline, ServerConfig(max_batch=8, queue_size=16, num_workers=1))
            async with server:
                responses = await asyncio.gather(*(server.submit(request) for _ in range(5)))
            return responses, server.stats()

        responses, stats = asyncio.run(drive())
        assert all(r.ok for r in responses)
        assert len({r.output for r in responses}) == 1
        assert stats["requests"]["coalesced"] == 4
        # exactly one request reached a worker, in a batch of one
        assert stats["batches"]["count"] == 1
        assert stats["batches"]["mean_size"] == 1
        assert sum(1 for r in responses if not r.cached) == 1


# -- the flush policy ---------------------------------------------------------------------


class TestBatchWindow:
    def test_size_trigger(self):
        window = BatchWindow(max_batch=4, max_wait_ms=1000.0)
        assert not window.should_flush(3, opened_at=0.0, now=0.0)
        assert window.should_flush(4, opened_at=0.0, now=0.0)

    def test_time_trigger(self):
        window = BatchWindow(max_batch=100, max_wait_ms=5.0)
        assert not window.should_flush(1, opened_at=0.0, now=0.004)
        assert window.should_flush(1, opened_at=0.0, now=0.005)
        assert window.remaining_wait(opened_at=0.0, now=0.002) == pytest.approx(0.003)
        assert window.remaining_wait(opened_at=0.0, now=0.009) == 0.0

    def test_validation(self):
        with pytest.raises(ModelConfigError):
            BatchWindow(max_batch=0)
        with pytest.raises(ModelConfigError):
            BatchWindow(max_batch=1, max_wait_ms=-1.0)
        with pytest.raises(ModelConfigError):
            ServerConfig(num_workers=0)
        with pytest.raises(ModelConfigError):
            ServerConfig(queue_size=0)


class TestStatsSnapshotCost:
    """``Server.stats()`` must stay a targeted-copy snapshot, not a blanket deepcopy."""

    def test_allocation_is_bounded_at_10k_deployments(self):
        import tracemalloc

        from repro.serving import server as server_module

        pipeline_stub = type("PipelineStub", (), {"stats": lambda self: {}})()
        srv = Server(pipeline_stub)  # type: ignore[arg-type]
        for index in range(10_000):
            name = f"viz@{index}"
            srv._deployments[name] = server_module._Deployment(name, pipeline_stub)
        tracemalloc.start()
        snapshot = srv.stats()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Measured ~7 MB for the snapshot itself; a blanket deepcopy pass
        # over the result roughly doubles that (~15 MB peak).  10 MB gives
        # headroom over the former and fails on the latter.
        assert peak < 10 * 1024 * 1024, f"stats() peak allocation {peak / 1e6:.1f} MB"
        assert len(snapshot["deployments"]) == 10_001  # 10k + the default deployment

    def test_snapshot_is_detached_from_live_state(self):
        from repro.serving.server import DEFAULT_DEPLOYMENT

        pipeline_stub = type("PipelineStub", (), {"stats": lambda self: {}})()
        srv = Server(pipeline_stub)  # type: ignore[arg-type]
        srv._rollbacks.append({"deployment": "viz@1", "reason": "canary"})
        snapshot = srv.stats()
        snapshot["requests"]["submitted"] = 999
        snapshot["deployments"][DEFAULT_DEPLOYMENT]["requests"]["completed"] = 999
        snapshot["rollbacks"][0]["reason"] = "mutated"
        snapshot["rollbacks"].append({"x": 1})
        assert srv._counts["submitted"] == 0
        assert srv._deployments[DEFAULT_DEPLOYMENT].counts["completed"] == 0
        assert srv._rollbacks == [{"deployment": "viz@1", "reason": "canary"}]
