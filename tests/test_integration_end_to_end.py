"""End-to-end integration test: data generation -> pre-training -> MFT -> evaluation.

This mirrors the full DataVisT5 recipe at a miniature scale and checks that
every stage plugs into the next: the corpora feed the hybrid pre-trainer, the
pre-trained weights feed multi-task fine-tuning, and the fine-tuned model can
be evaluated with the paper's metrics on all four tasks and saved/reloaded.
"""

import numpy as np
import pytest

from repro.core import DataVisT5, DataVisT5Config, HybridPretrainer, MultiTaskFineTuner, TrainingConfig
from repro.datasets.corpus import build_pretraining_corpus
from repro.evaluation import build_task_corpora, evaluate_generation_model, evaluate_text_to_vis_model
from repro.evaluation.tasks import TASKS


@pytest.fixture(scope="module")
def pipeline():
    corpora = build_task_corpora(
        num_databases=6,
        examples_per_database=6,
        num_chart2text=15,
        num_wikitabletext=15,
        max_fevisqa=80,
        max_test_examples=6,
        seed=1,
    )
    pretraining_corpus = build_pretraining_corpus(*corpora.pretraining_inputs())
    config = DataVisT5Config.from_preset("tiny", max_input_length=96, max_target_length=48, max_decode_length=32, seed=1)
    model = DataVisT5.from_corpus(pretraining_corpus.all_texts(), config=config, max_vocab_size=1500)
    training = TrainingConfig(num_epochs=1, batch_size=8, learning_rate=5e-3, seed=1)
    pretrain_report = HybridPretrainer(model, pretraining_corpus, training).train()
    finetune_report = MultiTaskFineTuner(model, corpora.train_pairs, training, examples_per_epoch=80).train()
    return corpora, model, pretrain_report, finetune_report


class TestEndToEnd:
    def test_pretraining_ran_both_objectives(self, pipeline):
        _, _, pretrain_report, _ = pipeline
        assert pretrain_report.num_bdc_examples > 0
        assert pretrain_report.num_mlm_examples > 0
        assert np.isfinite(pretrain_report.final_loss)

    def test_finetuning_covered_all_tasks(self, pipeline):
        _, _, _, finetune_report = pipeline
        assert set(finetune_report.task_counts) == set(TASKS)

    def test_text_to_vis_evaluation_runs(self, pipeline):
        corpora, model, _, _ = pipeline
        examples = corpora.nvbench_splits.test[:4]
        result = evaluate_text_to_vis_model(model, examples, corpora.pool)
        assert result.num_examples == len(examples)
        assert 0.0 <= result.em <= 1.0

    def test_generation_evaluation_runs_for_all_tasks(self, pipeline):
        corpora, model, _, _ = pipeline
        for task in ("vis_to_text", "fevisqa", "table_to_text"):
            metrics = evaluate_generation_model(model, corpora.test_pairs[task][:4])
            assert 0.0 <= metrics.meteor <= 1.0

    def test_model_roundtrips_through_checkpoint(self, pipeline, tmp_path):
        corpora, model, _, _ = pipeline
        model.save(tmp_path / "ckpt")
        restored = DataVisT5.load(tmp_path / "ckpt")
        example = corpora.test_pairs["vis_to_text"][0]
        assert restored.predict(example.source) == model.predict(example.source)
