"""Span/metric name reconciliation: one inventory, everywhere.

``repro.obs.names`` is the single source of truth for every span name the
tracing layer emits and every metric name the serving stack records — the
observability twin of ``test_serving_protocol_codes``.  This suite pins
every derived surface to it:

* the ``SPAN_*`` / ``METRIC_*`` constants and the derived name tuples;
* the names the instrumented sources actually reference (no respelled
  strings, no constants that nothing emits);
* the naming conventions (layer-dotted, unit-suffixed);
* the documentation tables in ``docs/observability.md``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs import names
from repro.obs.names import METRIC_MEANINGS, METRIC_NAMES, SPAN_MEANINGS, SPAN_NAMES

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Every source file that records spans or metrics.
INSTRUMENTED_SOURCES = (
    "src/repro/serving/server.py",
    "src/repro/serving/sharded.py",
    "src/repro/serving/pipeline.py",
    "src/repro/serving/continuous.py",
    "src/repro/nn/decode_cache.py",
)

KNOWN_LAYERS = {"gateway", "server", "shard", "pipeline", "continuous", "arena", "decode"}


def _constants(prefix: str) -> dict[str, str]:
    return {
        name: value
        for name, value in vars(names).items()
        if name.startswith(prefix) and isinstance(value, str) and name not in ("SPAN_NAMES", "METRIC_NAMES")
    }


def test_name_tuples_derive_from_the_meanings():
    assert SPAN_NAMES == tuple(SPAN_MEANINGS)
    assert METRIC_NAMES == tuple(METRIC_MEANINGS)
    assert all(meaning.strip() for meaning in SPAN_MEANINGS.values())
    assert all(meaning.strip() for meaning in METRIC_MEANINGS.values())


def test_constants_cover_the_meanings_exactly():
    assert set(_constants("SPAN_").values()) == set(SPAN_MEANINGS)
    assert set(_constants("METRIC_").values()) == set(METRIC_MEANINGS)


def test_names_follow_the_layer_dot_event_convention():
    for name in SPAN_NAMES + METRIC_NAMES:
        layer, _, event = name.partition(".")
        assert layer in KNOWN_LAYERS, f"{name!r} uses unknown layer prefix {layer!r}"
        assert event and re.fullmatch(r"[a-z0-9_]+", event), f"{name!r} event is not snake_case"


def test_metric_meanings_declare_the_instrument_kind():
    for name, meaning in METRIC_MEANINGS.items():
        kind = meaning.split(":", 1)[0]
        assert kind in ("counter", "gauge", "histogram"), f"{name!r} meaning lacks a kind prefix"
        if kind == "counter":
            assert name.endswith("_total"), f"counter {name!r} must end in _total"
        if name.endswith("_ms"):
            assert kind == "histogram", f"{name!r} carries _ms but is a {kind}"


def test_sources_reference_only_known_constants_and_use_all_of_them():
    span_constants = _constants("SPAN_")
    metric_constants = _constants("METRIC_")
    defined = set(span_constants) | set(metric_constants) | {"SPAN_NAMES", "METRIC_NAMES", "SPAN_STATUSES"}
    referenced: set[str] = set()
    for relative in INSTRUMENTED_SOURCES:
        source = (REPO_ROOT / relative).read_text(encoding="utf-8")
        referenced |= set(re.findall(r"\b(?:SPAN|METRIC)_[A-Z_]+\b", source))
    unknown = referenced - defined
    assert not unknown, f"instrumented sources reference undefined names: {sorted(unknown)}"
    # every pinned name is actually emitted somewhere — no dead inventory
    unused = (set(span_constants) | set(metric_constants)) - referenced
    assert not unused, f"names.py defines names nothing records: {sorted(unused)}"


def test_no_respelled_name_strings_in_instrumented_sources():
    # Instrumentation must go through the constants; a literal "gateway.xyz"
    # style string in a record/begin call would dodge the inventory.
    values = set(SPAN_NAMES) | set(METRIC_NAMES)
    for relative in INSTRUMENTED_SOURCES:
        source = (REPO_ROOT / relative).read_text(encoding="utf-8")
        for value in values:
            pattern = rf"(?:TRACES\.(?:root|begin|record)|METRICS\.\w+)\(\s*[\"']{re.escape(value)}[\"']"
            assert not re.search(pattern, source), f"{relative} respells {value!r} instead of using its constant"


def test_docs_tables_list_every_name():
    docs = (REPO_ROOT / "docs" / "observability.md").read_text(encoding="utf-8")
    for name in SPAN_NAMES + METRIC_NAMES:
        assert f"`{name}`" in docs, f"docs/observability.md does not document {name!r}"
