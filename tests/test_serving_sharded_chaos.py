"""Chaos suite: the sharded tier's failure semantics under real process death.

Every test drives live forked shard processes through a failure the gateway
must survive: ``kill -9`` mid-batch, a real ``SIGSTOP`` past the heartbeat
deadline, injected crash/wedge/lost-reply faults, a crash in the middle of a
rolling swap, and a requeue budget of zero.  The assertions pin the contract
from ``docs/sharding.md``:

* every submitted request gets exactly one response — none lost, none
  duplicated — and carries its caller-assigned ``request_id`` back;
* a dead shard is detected (pipe EOF, missed heartbeats, or an overdue
  batch), its in-flight work is requeued to surviving shards, and the slot
  is respawned under its hash-ring identity;
* ``shard_failed`` is emitted only when the requeue budget is exhausted;
* a chunk stream caught mid-flight by a shard death never hangs and never
  truncates: a requeued stream restarts cleanly from a ``seq == 0`` reset
  chunk and still reassembles bitwise, and an exhausted budget surfaces as
  a structured terminal error chunk.

Fault injection needs fresh, never-seen request payloads: a repeat request
is answered from the gateway cache and would never reach the armed shard.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.deploy import ModelRegistry
from repro.errors import ModelConfigError
from repro.serving import FAULT_MODES, Request, ShardConfig, ShardedServer

pytestmark = pytest.mark.chaos

# Short heartbeats so detection fits in test time; calibrated 20 ms service
# sleeps keep batches in flight long enough for a fault to land mid-batch.
CHAOS = dict(
    num_shards=2,
    heartbeat_interval_ms=25.0,
    heartbeat_timeout_ms=300.0,
    calibrated_service_ms=20.0,
    enable_fault_injection=True,
    start_timeout_s=30.0,
)


@pytest.fixture(scope="module")
def env(serving_model_env, tmp_path_factory) -> dict:
    tmp = tmp_path_factory.mktemp("sharded-chaos")
    registry = ModelRegistry(tmp / "registry.json")
    registry.register_checkpoint("viz", serving_model_env["model"], tmp / "ckpt-v1")
    return {**serving_model_env, "tmp": tmp, "registry_path": tmp / "registry.json"}


def fresh_requests(env, count: int, tag: str) -> list[Request]:
    """``count`` never-before-seen requests so no cache can answer them."""
    pool, nvbench = env["pool"], env["nvbench"]
    requests = []
    for index in range(count):
        example = nvbench.examples[index % len(nvbench.examples)]
        requests.append(
            Request(
                task="fevisqa",
                question=f"{tag} {index} : is this the tallest bar ?",
                chart=example.query,
                schema=pool.get(example.db_id).schema,
                request_id=f"{tag}-{index}",
            )
        )
    return requests


def wait_for(predicate, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return False


def assert_exactly_once(responses, requests) -> None:
    """At-most-once delivery + completeness: one response per request, in order."""
    assert len(responses) == len(requests)
    assert [r.request_id for r in responses] == [r.request_id for r in requests]


def assert_recovered(server, dead_slots=("shard-0", "shard-1"), restarts=1) -> None:
    """The gateway noticed a death and brought every slot back alive."""
    assert wait_for(
        lambda: server.stats()["restarts"] >= restarts
        and all(s["alive"] and not s["broken"] for s in server.stats()["shards"].values())
    ), server.stats()


class TestProcessDeath:
    def test_kill9_mid_batch_requeues_and_respawns(self, env):
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            victim = server.shard_pids()["shard-0"]
            killer = threading.Timer(0.05, lambda: os.kill(victim, signal.SIGKILL))
            killer.start()
            requests = fresh_requests(env, 24, "kill9")
            responses = server.serve(requests)
            killer.join()
            assert_exactly_once(responses, requests)
            assert [r.error for r in responses] == [None] * len(requests)
            assert_recovered(server)
            stats = server.stats()
            assert stats["restarts"] >= 1
            assert stats["requeues"] >= 1
            assert server.shard_pids()["shard-0"] != victim
            # the respawned shard serves again under the same ring identity
            again = server.serve(fresh_requests(env, 6, "kill9-after"))
            assert [r.error for r in again] == [None] * 6

    def test_sigstop_past_heartbeat_deadline_is_killed_and_respawned(self, env):
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            victim = server.shard_pids()["shard-1"]
            os.kill(victim, signal.SIGSTOP)
            requests = fresh_requests(env, 16, "sigstop")
            responses = server.serve(requests)
            assert_exactly_once(responses, requests)
            assert [r.error for r in responses] == [None] * len(requests)
            assert_recovered(server)
            assert server.shard_pids()["shard-1"] != victim

    def test_no_response_lost_or_duplicated_across_two_kills(self, env):
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            pids = server.shard_pids()
            killers = [
                threading.Timer(0.05, lambda: os.kill(pids["shard-0"], signal.SIGKILL)),
                threading.Timer(0.25, lambda: os.kill(pids["shard-1"], signal.SIGKILL)),
            ]
            for killer in killers:
                killer.start()
            requests = fresh_requests(env, 40, "double")
            responses = server.serve(requests)
            for killer in killers:
                killer.join()
            assert_exactly_once(responses, requests)
            # default max_requeues=2 covers two hops, so nothing may fail
            assert [r.error for r in responses] == [None] * len(requests)
            assert_recovered(server, restarts=2)
            stats = server.stats()
            assert stats["requests"]["submitted"] == len(requests)
            assert stats["requests"]["completed"] == len(requests)
            assert sum(stats["requests"]["failed"].values()) == 0


class TestFaultInjection:
    def test_injected_exit_mid_batch(self, env):
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            server.inject_fault("shard-1", "exit", after=1)
            requests = fresh_requests(env, 16, "exit")
            responses = server.serve(requests)
            assert_exactly_once(responses, requests)
            assert [r.error for r in responses] == [None] * len(requests)
            assert_recovered(server)
            assert server.stats()["requeues"] >= 1

    def test_injected_wedge_is_caught_by_the_heartbeat_monitor(self, env):
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            server.inject_fault("shard-0", "wedge", after=1)
            requests = fresh_requests(env, 16, "wedge")
            responses = server.serve(requests)
            assert_exactly_once(responses, requests)
            assert [r.error for r in responses] == [None] * len(requests)
            assert_recovered(server)
            assert any("wedged" in entry for entry in server.stats()["fatal"])

    def test_swallowed_reply_is_caught_by_the_batch_deadline(self, env):
        config = ShardConfig(**{**CHAOS, "batch_deadline_ms": 1500.0})
        with ShardedServer(env["registry_path"], "viz@1", config) as server:
            server.inject_fault("shard-0", "drop_batch", after=1)
            requests = fresh_requests(env, 16, "drop")
            responses = server.serve(requests)
            assert_exactly_once(responses, requests)
            assert [r.error for r in responses] == [None] * len(requests)
            assert_recovered(server)
            assert any("overdue" in entry for entry in server.stats()["fatal"])

    def test_fault_injection_is_gated(self, env):
        disabled = ShardConfig(num_shards=1, start_timeout_s=30.0)
        with ShardedServer(env["registry_path"], "viz@1", disabled) as server:
            with pytest.raises(ModelConfigError, match="fault injection is disabled"):
                server.inject_fault("shard-0", "exit")
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            with pytest.raises(ModelConfigError, match="unknown fault mode"):
                server.inject_fault("shard-0", "segfault")
        assert FAULT_MODES == ("exit", "wedge", "drop_batch")


class TestRollingSwapUnderFailure:
    def test_crash_during_rolling_swap_still_converges(self, env):
        ModelRegistry(env["registry_path"]).register_checkpoint(
            "viz", env["model"], env["tmp"] / "ckpt-v2"
        )
        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            warm = server.serve(fresh_requests(env, 4, "preswap"))
            assert [r.error for r in warm] == [None] * 4
            victim = server.shard_pids()["shard-0"]
            killer = threading.Timer(0.02, lambda: os.kill(victim, signal.SIGKILL))
            killer.start()
            deployed = server.rolling_swap("viz@2")
            killer.join()
            assert deployed == "viz@2"
            assert_recovered(server)
            stats = server.stats()
            assert stats["primary"] == "viz@2"
            assert "viz@2" in stats["deployments"]
            # every slot — including the respawned one — carries the new version
            assert all("viz@2" in s["deployments"] for s in stats["shards"].values())
            # the old primary was never drained: still pinnable
            assert "viz@1" in stats["deployments"]
            after = server.serve(fresh_requests(env, 8, "postswap"))
            assert [r.error for r in after] == [None] * 8


class TestStreamingUnderFailure:
    @staticmethod
    def consume_stream(server, request, timeout: float = 60.0) -> list:
        """Drain ``server.stream`` on a worker thread; fail the test on a hang."""
        chunks: list = []
        done = threading.Event()
        failure: list[BaseException] = []

        def drain() -> None:
            try:
                for chunk in server.stream(request):
                    chunks.append(chunk)
            except BaseException as error:  # noqa: BLE001 - surfaced as a test failure
                failure.append(error)
            finally:
                done.set()

        threading.Thread(target=drain, daemon=True).start()
        assert done.wait(timeout), "the stream hung instead of terminating"
        if failure:
            raise failure[0]
        return chunks

    def test_shard_death_mid_stream_restarts_cleanly(self, env):
        from repro.serving import assemble_stream

        with ShardedServer(env["registry_path"], "viz@1", ShardConfig(**CHAOS)) as server:
            # arm both shards so the stream's serving shard dies regardless of
            # ring placement; the default budget of 2 covers both hops
            server.inject_fault("shard-0", "exit", after=1)
            server.inject_fault("shard-1", "exit", after=1)
            request = fresh_requests(env, 1, "stream-kill")[0]
            chunks = self.consume_stream(server, request)
            assert chunks, "a stream must never end without chunks"
            assert chunks[-1].final and chunks[-1].response is not None
            assert all(not chunk.final for chunk in chunks[:-1])
            streamed = assemble_stream(chunks)
            assert streamed.error is None, streamed.detail
            assert streamed.request_id == request.request_id
            # bitwise: the restarted stream reassembles to the sync answer
            sync = server.submit(request)
            assert streamed.output == sync.output
            assert_recovered(server)
            assert server.stats()["requeues"] >= 1

    def test_exhausted_budget_mid_stream_is_a_terminal_error_chunk(self, env):
        from repro.serving import assemble_stream

        config = ShardConfig(**{**CHAOS, "num_shards": 1, "max_requeues": 0})
        with ShardedServer(env["registry_path"], "viz@1", config) as server:
            server.inject_fault("shard-0", "exit", after=1)
            request = fresh_requests(env, 1, "stream-budget")[0]
            chunks = self.consume_stream(server, request)
            # structured termination: the failure is a final error chunk, not
            # a hang or a truncated stream
            assert chunks[-1].final and chunks[-1].response is not None
            failed = assemble_stream(chunks)
            assert failed.error == "shard_failed"
            assert failed.request_id == request.request_id
            # the tier heals: the respawned shard streams the request fine
            assert_recovered(server)
            retry = self.consume_stream(server, request)
            recovered = assemble_stream(retry)
            assert recovered.error is None, recovered.detail
            assert recovered.output == server.submit(request).output


class TestRequeueBudget:
    def test_exhausted_budget_fails_with_shard_failed_only(self, env):
        config = ShardConfig(**{**CHAOS, "num_shards": 1, "max_requeues": 0})
        with ShardedServer(env["registry_path"], "viz@1", config) as server:
            server.inject_fault("shard-0", "exit", after=1)
            requests = fresh_requests(env, 24, "budget")
            responses = server.serve(requests)
            assert_exactly_once(responses, requests)
            failed = [r for r in responses if r.error is not None]
            # the batches in flight when the shard died had no budget left ...
            assert failed
            assert {r.error for r in failed} == {"shard_failed"}
            assert all("requeue budget" in (r.detail or "") for r in failed)
            # ... but queued-not-yet-dispatched work survives the respawn: at
            # most max_inflight_batches * max_batch jobs can die with a shard
            assert len(failed) <= config.max_inflight_batches * config.max_batch
            stats = server.stats()
            assert stats["requests"]["failed"]["shard_failed"] == len(failed)
            assert_recovered(server)
            retry = server.serve(fresh_requests(env, 4, "budget-after"))
            assert [r.error for r in retry] == [None] * 4
