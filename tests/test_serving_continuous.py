"""Continuous-batching scheduler and flush-policy boundary suite.

Covers the :class:`~repro.serving.continuous.ContinuousDecodeLoop` contract
(run == solo decode, overflow queueing, mid-flight ticket reads, failure
poisoning and recovery, registry memoization), the
:class:`~repro.serving.batching.BatchWindow` boundary behaviour
property-based (``max_wait_ms=0``, ``now == closes_at`` exact-boundary
flush, ``remaining_wait`` clamping), and the pipeline-level guarantee that
``continuous=True`` and ``continuous=False`` serve identical outputs.  The
multi-threaded soak test is marked ``slow``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ServingStateError
from repro.nn.transformer import T5Model, TransformerConfig
from repro.serving import (
    BatchWindow,
    ContinuousDecodeLoop,
    Pipeline,
    PipelineConfig,
    Request,
    continuous_loop_for,
    continuous_loop_stats,
    continuous_predict_batch,
)

_MODEL_CACHE: dict[tuple, T5Model] = {}


def build_model(seed=0, eos_id=1, num_layers=1) -> T5Model:
    """A tiny eval-mode model, memoized across tests and hypothesis examples."""
    key = (seed, eos_id, num_layers)
    if key not in _MODEL_CACHE:
        config = TransformerConfig(
            vocab_size=24,
            d_model=8,
            num_heads=2,
            d_ff=16,
            num_encoder_layers=num_layers,
            num_decoder_layers=num_layers,
            eos_id=eos_id,
            seed=seed,
        )
        _MODEL_CACHE[key] = T5Model(config).eval()
    return _MODEL_CACHE[key]


def random_rows(rng, count, width=4):
    return [rng.integers(4, 23, size=rng.integers(2, width + 1)).astype(np.int64) for _ in range(count)]


# -- BatchWindow boundary properties ---------------------------------------------------


class TestBatchWindowBoundaries:
    @settings(max_examples=100, deadline=None)
    @given(
        pending=st.integers(min_value=1, max_value=64),
        opened_at=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        elapsed=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_zero_wait_window_always_flushes_immediately(self, pending, opened_at, elapsed):
        """With ``max_wait_ms=0`` the window closes the instant it opens."""
        window = BatchWindow(max_batch=128, max_wait_ms=0)
        now = opened_at + elapsed
        assert window.closes_at(opened_at) == opened_at
        assert window.should_flush(pending, opened_at, now)
        assert window.remaining_wait(opened_at, now) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(
        max_batch=st.integers(min_value=1, max_value=32),
        max_wait_ms=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        opened_at=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    )
    def test_exact_boundary_flushes(self, max_batch, max_wait_ms, opened_at):
        """``now == closes_at`` is a flush, not a one-tick-late miss."""
        window = BatchWindow(max_batch=max_batch, max_wait_ms=max_wait_ms)
        boundary = window.closes_at(opened_at)
        assert window.should_flush(1, opened_at, boundary)
        assert window.remaining_wait(opened_at, boundary) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(
        max_batch=st.integers(min_value=1, max_value=32),
        max_wait_ms=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
        opened_at=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        delta=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    )
    def test_remaining_wait_never_negative_and_consistent(self, max_batch, max_wait_ms, opened_at, delta):
        """``remaining_wait`` clamps at zero and agrees with ``should_flush``."""
        window = BatchWindow(max_batch=max_batch, max_wait_ms=max_wait_ms)
        now = opened_at + delta
        remaining = window.remaining_wait(opened_at, now)
        assert remaining >= 0.0
        if remaining == 0.0 and now >= opened_at:
            assert window.should_flush(1, opened_at, now)
        if remaining > 0.0:
            assert not window.should_flush(max_batch - 1, opened_at, now) or window.is_full(max_batch - 1)

    @settings(max_examples=100, deadline=None)
    @given(
        max_batch=st.integers(min_value=1, max_value=32),
        pending=st.integers(min_value=0, max_value=64),
    )
    def test_size_trigger_is_exact(self, max_batch, pending):
        window = BatchWindow(max_batch=max_batch, max_wait_ms=1e9)
        assert window.is_full(pending) == (pending >= max_batch)
        assert window.should_flush(pending, 0.0, 0.0) == (pending >= max_batch)


# -- the continuous decode loop --------------------------------------------------------


class TestContinuousDecodeLoop:
    def test_run_matches_solo_naive_decode(self):
        model = build_model(seed=3)
        rows = random_rows(np.random.default_rng(0), count=7)
        loop = ContinuousDecodeLoop(model, max_slots=3, page_size=4)
        outputs = loop.run(rows, max_length=6)
        for row, output in zip(rows, outputs):
            oracle = model.generate(row[None], max_length=6, use_cache=False)[0]
            assert np.array_equal(output, oracle)

    def test_admissions_beyond_max_slots_queue_and_complete(self):
        model = build_model(seed=4, eos_id=-1)
        rows = random_rows(np.random.default_rng(1), count=9)
        loop = ContinuousDecodeLoop(model, max_slots=2, page_size=2)
        outputs = loop.run(rows, max_length=4)
        assert len(outputs) == 9
        stats = loop.stats()
        assert stats["completed"] == 9 and stats["pending"] == 0 and stats["active"] == 0
        assert stats["peak_active"] <= 2
        for row, output in zip(rows, outputs):
            assert np.array_equal(output, model.generate(row[None], max_length=4, use_cache=False)[0])

    def test_ticket_read_mid_flight_raises(self):
        loop = ContinuousDecodeLoop(build_model(seed=5), max_slots=2)
        ticket = loop.submit(np.array([5, 6], dtype=np.int64), max_length=3)
        assert not ticket.done
        with pytest.raises(ServingStateError, match="still decoding"):
            _ = ticket.result
        loop.drive([ticket])
        assert ticket.result is not None

    def test_step_failure_poisons_in_flight_tickets_and_loop_recovers(self, monkeypatch):
        model = build_model(seed=6, eos_id=-1)
        loop = ContinuousDecodeLoop(model, max_slots=2, page_size=2)
        original = model.lm_logits

        def broken(*args, **kwargs):
            raise RuntimeError("injected logits failure")

        monkeypatch.setattr(model, "lm_logits", broken)
        tickets = [loop.submit(row, max_length=3) for row in random_rows(np.random.default_rng(2), 2)]
        loop.drive(tickets)
        for ticket in tickets:
            with pytest.raises(ServingStateError, match="injected logits failure"):
                _ = ticket.result
        assert loop.stats()["failed"] == 2

        monkeypatch.setattr(model, "lm_logits", original)
        rows = random_rows(np.random.default_rng(3), 3)
        outputs = loop.run(rows, max_length=3)
        for row, output in zip(rows, outputs):
            assert np.array_equal(output, model.generate(row[None], max_length=3, use_cache=False)[0])

    def test_loop_registry_memoizes_per_model_and_knobs(self):
        model = build_model(seed=7)
        loop = continuous_loop_for(model, dtype="float64", max_slots=4, page_size=8)
        assert continuous_loop_for(model, dtype="float64", max_slots=4, page_size=8) is loop
        assert continuous_loop_for(model, dtype="float64", max_slots=2, page_size=8) is not loop
        assert continuous_loop_for(build_model(seed=8), dtype="float64", max_slots=4, page_size=8) is not loop
        loop.run(random_rows(np.random.default_rng(4), 2), max_length=3)
        stats = continuous_loop_stats(model)
        assert "dtype=float64,slots=4,page=8" in stats
        assert stats["dtype=float64,slots=4,page=8"]["completed"] >= 2
        assert "arena" in stats["dtype=float64,slots=4,page=8"]

    @pytest.mark.slow
    def test_concurrent_callers_share_one_batch_soak(self):
        """Soak: many threads drive one loop at once; every output still solo-exact."""
        model = build_model(seed=9, num_layers=2)
        loop = ContinuousDecodeLoop(model, max_slots=4, page_size=4)
        rng = np.random.default_rng(5)
        per_thread_rows = [random_rows(rng, count=6) for _ in range(4)]
        results: dict[int, list] = {}
        errors: list[Exception] = []

        def worker(index):
            try:
                results[index] = loop.run(per_thread_rows[index], max_length=5)
            except Exception as error:  # noqa: BLE001 - surface to the main thread
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        for index, rows in enumerate(per_thread_rows):
            for row, output in zip(rows, results[index]):
                oracle = model.generate(row[None], max_length=5, use_cache=False)[0]
                assert np.array_equal(output, oracle)
        stats = loop.stats()
        assert stats["completed"] == 24
        assert stats["peak_active"] <= 4


# -- pipeline integration --------------------------------------------------------------


class TestPipelineContinuous:
    @pytest.fixture(scope="class")
    def env(self, serving_model_env):
        return serving_model_env

    @pytest.fixture(scope="class")
    def requests(self, env):
        requests = []
        for example in env["nvbench"].examples[:6]:
            schema = env["pool"].get(example.db_id).schema
            requests.append(Request(task="text_to_vis", question=example.question, schema=schema))
        return requests

    def test_continuous_and_static_pipelines_agree(self, env, requests):
        continuous = Pipeline.from_model(env["model"], config=PipelineConfig(continuous=True))
        static = Pipeline.from_model(env["model"], config=PipelineConfig(continuous=False))
        continuous_outputs = [r.output for r in continuous.serve(requests)]
        static_outputs = [r.output for r in static.serve(requests)]
        assert continuous_outputs == static_outputs

    def test_continuous_predict_batch_matches_static_predict_batch(self, env):
        backend = env["model"]
        sources = ["<NL> show the number of artists per country", "<NL> list all exhibitions by year"]
        assert continuous_predict_batch(backend, sources) == backend.predict_batch(sources)
        assert continuous_predict_batch(backend, []) == []

    def test_pipeline_stats_expose_scheduler_counters(self, env, requests):
        pipeline = Pipeline.from_model(env["model"], config=PipelineConfig(continuous=True))
        pipeline.serve(requests)
        stats = pipeline.stats()
        assert "continuous" in stats
        loops = stats["continuous"].get("text_to_vis", {})
        assert loops, "serving through the continuous path must register a loop"
        for loop_stats in loops.values():
            assert loop_stats["completed"] >= len(requests)
            assert loop_stats["arena"]["pages_in_use"] == 0

    def test_continuous_config_roundtrips_from_dict(self):
        pipeline = Pipeline.from_config(
            {"vis_to_text": {"type": "heuristics"}, "pipeline": {"continuous": False}}
        )
        assert pipeline.config.continuous is False
