"""Tests for the EM family, BLEU, ROUGE and METEOR."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.metrics import (
    bleu_score,
    corpus_bleu,
    corpus_exact_match,
    corpus_meteor,
    corpus_rouge,
    dv_query_exact_match,
    evaluate_generation,
    meteor_score,
    rouge_l,
    rouge_n,
)

QUERY = "visualize bar select t.a , count ( t.a ) from t group by t.a"


class TestExactMatch:
    def test_identical_queries_match_everywhere(self):
        outcome = dv_query_exact_match(QUERY, QUERY)
        assert outcome == {"vis": True, "axis": True, "data": True, "exact": True, "parseable": True}

    def test_different_chart_type_only_vis_differs(self):
        predicted = QUERY.replace("bar", "pie")
        outcome = dv_query_exact_match(predicted, QUERY)
        assert not outcome["vis"] and outcome["axis"] and outcome["data"] and not outcome["exact"]

    def test_axis_order_is_tolerated(self):
        predicted = "visualize bar select count ( t.a ) , t.a from t group by t.a"
        outcome = dv_query_exact_match(predicted, QUERY)
        assert outcome["axis"]

    def test_data_component_mismatch(self):
        predicted = QUERY + " order by t.a desc"
        outcome = dv_query_exact_match(predicted, QUERY)
        assert not outcome["data"] and not outcome["exact"]

    def test_unparseable_prediction_counts_as_miss(self):
        outcome = dv_query_exact_match("not a query at all", QUERY)
        assert outcome == {"vis": False, "axis": False, "data": False, "exact": False, "parseable": False}

    def test_unparseable_reference_raises(self):
        with pytest.raises(EvaluationError):
            dv_query_exact_match(QUERY, "garbage reference")

    def test_corpus_aggregation(self):
        predictions = [QUERY, QUERY.replace("bar", "pie"), "garbage"]
        references = [QUERY, QUERY, QUERY]
        result = corpus_exact_match(predictions, references)
        assert result.em == pytest.approx(1 / 3)
        assert result.vis_em == pytest.approx(1 / 3)
        assert result.axis_em == pytest.approx(2 / 3)
        assert result.num_unparseable == 1
        assert 0.0 <= result.mean_of_components() <= 1.0

    def test_corpus_requires_equal_lengths(self):
        with pytest.raises(EvaluationError):
            corpus_exact_match([QUERY], [])


class TestBleu:
    def test_perfect_match_is_one(self):
        assert bleu_score("the cat sat", "the cat sat", max_n=2) == pytest.approx(1.0, abs=1e-6)

    def test_no_overlap_is_near_zero(self):
        assert bleu_score("aaa bbb", "ccc ddd") < 0.01

    def test_brevity_penalty(self):
        short = corpus_bleu(["the cat"], ["the cat sat on the mat"], max_n=1)
        full = corpus_bleu(["the cat sat on the mat"], ["the cat sat on the mat"], max_n=1)
        assert short < full

    def test_corpus_length_mismatch(self):
        with pytest.raises(EvaluationError):
            corpus_bleu(["a"], ["a", "b"])

    @given(st.lists(st.sampled_from(["chart", "bar", "count", "of", "items"]), min_size=1, max_size=8))
    def test_bounded(self, words):
        text = " ".join(words)
        assert 0.0 <= bleu_score(text, "bar chart of the count of items") <= 1.0


class TestRouge:
    def test_identical_is_one(self):
        assert rouge_n("a b c", "a b c", 1) == pytest.approx(1.0)
        assert rouge_l("a b c", "a b c") == pytest.approx(1.0)

    def test_partial_overlap(self):
        score = rouge_n("a b x", "a b c", 1)
        assert 0.0 < score < 1.0

    def test_lcs_respects_order(self):
        assert rouge_l("a b c d", "a c b d") < 1.0

    def test_corpus_keys(self):
        scores = corpus_rouge(["a b"], ["a b"])
        assert set(scores) == {"rouge1", "rouge2", "rougeL"}

    def test_empty_candidate(self):
        assert rouge_n("", "a b", 1) == 0.0


class TestMeteor:
    def test_identical_is_high(self):
        assert meteor_score("show the chart", "show the chart") > 0.9

    def test_synonym_matching_helps(self):
        with_synonym = meteor_score("display the graph", "show the chart")
        without = meteor_score("eat the apple", "show the chart")
        assert with_synonym > without

    def test_stemming_matches_inflections(self):
        assert meteor_score("counting charts", "count chart") > 0.3

    def test_fragmentation_penalty(self):
        ordered = meteor_score("a b c d", "a b c d")
        scrambled = meteor_score("d c b a", "a b c d")
        assert scrambled < ordered

    def test_corpus_bounds(self):
        assert 0.0 <= corpus_meteor(["a"], ["b"]) <= 1.0


class TestAggregateBundle:
    def test_bundle_keys_and_bounds(self):
        metrics = evaluate_generation(["a bar chart of sales"], ["a bar chart of revenue"])
        payload = metrics.as_dict()
        for key in ("BLEU-1", "BLEU-4", "ROUGE-1", "ROUGE-L", "METEOR"):
            assert 0.0 <= payload[key] <= 1.0
        assert payload["examples"] == 1
        assert 0.0 <= metrics.mean_of_components() <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(st.sampled_from(["bar", "chart", "sales", "of", "a"]), min_size=1, max_size=6),
        st.lists(st.sampled_from(["bar", "chart", "sales", "of", "a"]), min_size=1, max_size=6),
    )
    def test_all_metrics_bounded(self, candidate_words, reference_words):
        metrics = evaluate_generation([" ".join(candidate_words)], [" ".join(reference_words)])
        for key, value in metrics.as_dict().items():
            if key == "examples":
                continue
            assert 0.0 <= value <= 1.0
