"""Differential testing of :class:`QueryExecutor` against stdlib ``sqlite3``.

Generates seeded random DV queries — equi-joins, IN / NOT IN subqueries
(including aggregate subqueries), all five aggregate functions, DISTINCT,
GROUP BY and BIN-free ORDER BY — over small random tables, executes each
query with both the in-memory executor and sqlite3, and asserts the result
row multisets are equal (and, when the query orders, that the ordered
column's value sequence matches too).

The generator is constrained to the territory where DV-query semantics and
SQL semantics are defined to coincide: string data is lowercase (the
executor compares strings case-insensitively, sqlite case-sensitively),
numeric values are exact binary fractions (halves) so aggregate arithmetic
is bit-for-bit reproducible, and columns referenced by subquery SELECTs are
non-NULL except through aggregation — which is exactly how the NOT-IN
NULL-semantics divergence this suite originally caught was reproduced (see
``test_not_in_null_subquery_regression``).
"""

from __future__ import annotations

import random
import sqlite3
from collections import Counter

import pytest

from repro.database import Column, ColumnType, Database, DatabaseSchema, ForeignKey, TableSchema
from repro.database.executor import QueryExecutor
from repro.vql.ast import (
    AggregateExpr,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderByClause,
    SortDirection,
    Subquery,
)

QUERIES_PER_SEED = 5
SEEDS = range(40)  # 40 seeds x 5 queries = 200 generated queries

CITIES = ["amber", "basel", "cairo", "delhi", "essen"]
TAGS = ["alpha", "beta", "gamma", "delta"]
DESTS = ["lyon", "oslo", "perth", "quito"]

ORDERS = ("id", "qty", "price", "city", "tag")
SHIPMENTS = ("sid", "order_ref", "weight", "dest")
NUMERIC = {("orders", name) for name in ("id", "qty", "price")} | {
    ("shipments", name) for name in ("sid", "order_ref", "weight")
}
#: Columns the generator never makes NULL, so plain-column subquery SELECTs
#: cannot inject NULL members (aggregate subqueries still can — on purpose).
NON_NULL_COLUMNS = {"orders": ("id", "qty", "city"), "shipments": ("sid", "order_ref", "dest")}


# -- random databases -----------------------------------------------------------------


def _build_databases(rng: random.Random) -> tuple[Database, sqlite3.Connection]:
    schema = DatabaseSchema(
        "logistics",
        [
            TableSchema(
                "orders",
                [
                    Column("id", ColumnType.NUMBER),
                    Column("qty", ColumnType.NUMBER),
                    Column("price", ColumnType.NUMBER),
                    Column("city", ColumnType.TEXT),
                    Column("tag", ColumnType.TEXT),
                ],
            ),
            TableSchema(
                "shipments",
                [
                    Column("sid", ColumnType.NUMBER),
                    Column("order_ref", ColumnType.NUMBER),
                    Column("weight", ColumnType.NUMBER),
                    Column("dest", ColumnType.TEXT),
                ],
            ),
        ],
        foreign_keys=[ForeignKey("shipments", "order_ref", "orders", "id")],
    )
    orders = [
        {
            "id": index + 1,
            "qty": rng.randint(0, 12),
            "price": None if rng.random() < 0.15 else rng.randint(0, 40) / 2,
            "city": rng.choice(CITIES),
            "tag": None if rng.random() < 0.15 else rng.choice(TAGS),
        }
        for index in range(rng.randint(6, 16))
    ]
    shipments = [
        {
            "sid": index + 1,
            "order_ref": rng.randint(1, len(orders) + 2),
            "weight": None if rng.random() < 0.15 else rng.randint(1, 30) / 2,
            "dest": rng.choice(DESTS),
        }
        for index in range(rng.randint(6, 16))
    ]
    database = Database(schema, data={"orders": orders, "shipments": shipments})
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE orders (id REAL, qty REAL, price REAL, city TEXT, tag TEXT)")
    connection.execute("CREATE TABLE shipments (sid REAL, order_ref REAL, weight REAL, dest TEXT)")
    connection.executemany(
        "INSERT INTO orders VALUES (?,?,?,?,?)",
        [(row["id"], row["qty"], row["price"], row["city"], row["tag"]) for row in orders],
    )
    connection.executemany(
        "INSERT INTO shipments VALUES (?,?,?,?)",
        [(row["sid"], row["order_ref"], row["weight"], row["dest"]) for row in shipments],
    )
    return database, connection


# -- random queries -------------------------------------------------------------------


def _columns_of(table: str) -> tuple[str, ...]:
    return ORDERS if table == "orders" else SHIPMENTS


def _ref(table: str, column: str) -> ColumnRef:
    return ColumnRef(column=column, table=table)


def _random_condition(rng: random.Random, table: str) -> Condition:
    name = rng.choice(_columns_of(table))
    if (table, name) in NUMERIC:
        operator = rng.choice(["=", "!=", ">", "<", ">=", "<="])
        value = rng.choice([rng.randint(0, 12), rng.randint(0, 40) / 2])
    else:
        domain = CITIES if name == "city" else (TAGS if name == "tag" else DESTS)
        operator = rng.choice(["=", "!=", "like"])
        word = rng.choice(domain)
        value = word[:2] + "%" if operator == "like" else word
    return Condition(left=_ref(table, name), operator=operator, value=value)


def _random_subquery_condition(rng: random.Random, outer_tables: list[str]) -> Condition | None:
    outer_table = rng.choice(outer_tables)
    numeric = rng.random() < 0.6
    # The *outer* column may be nullable — NULL IN / NOT IN three-valued
    # logic is exactly the divergence territory this suite patrols.
    outer_candidates = [
        column for column in _columns_of(outer_table) if ((outer_table, column) in NUMERIC) == numeric
    ]
    inner_table = rng.choice(["orders", "shipments"])
    inner_candidates = [
        column for column in NON_NULL_COLUMNS[inner_table] if ((inner_table, column) in NUMERIC) == numeric
    ]
    if not outer_candidates or not inner_candidates:
        return None
    inner_column = rng.choice(inner_candidates)
    if numeric and rng.random() < 0.25:
        select = AggregateExpr(_ref(inner_table, inner_column), function=rng.choice(["count", "max", "min"]))
    else:
        select = AggregateExpr(_ref(inner_table, inner_column))
    inner_where = tuple(_random_condition(rng, inner_table) for _ in range(rng.choice([0, 0, 1])))
    subquery = Subquery(select=select, from_table=inner_table, where=inner_where)
    return Condition(
        left=_ref(outer_table, rng.choice(outer_candidates)),
        operator=rng.choice(["in", "not in"]),
        value=subquery,
    )


def _random_query(rng: random.Random) -> DVQuery:
    base = rng.choice(["orders", "shipments"])
    joins: tuple[JoinClause, ...] = ()
    tables = [base]
    if rng.random() < 0.4:
        if base == "orders":
            joins = (JoinClause("shipments", _ref("orders", "id"), _ref("shipments", "order_ref")),)
            tables.append("shipments")
        else:
            joins = (JoinClause("orders", _ref("shipments", "order_ref"), _ref("orders", "id")),)
            tables.append("orders")

    where = [_random_condition(rng, rng.choice(tables)) for _ in range(rng.choice([0, 0, 1, 1, 2]))]
    if rng.random() < 0.3:
        condition = _random_subquery_condition(rng, tables)
        if condition is not None:
            where.append(condition)

    all_columns = [(table, column) for table in tables for column in _columns_of(table)]
    numeric_columns = [(table, column) for table, column in all_columns if (table, column) in NUMERIC]
    group_candidates = [(t, c) for t, c in all_columns if c in ("city", "tag", "dest", "qty")]

    def random_aggregate() -> AggregateExpr:
        if rng.random() < 0.15:
            return AggregateExpr(ColumnRef("*"), function="count")
        if rng.random() < 0.3:
            table, column = rng.choice(all_columns)
            return AggregateExpr(_ref(table, column), function="count", distinct=rng.random() < 0.4)
        table, column = rng.choice(numeric_columns)
        return AggregateExpr(_ref(table, column), function=rng.choice(["sum", "avg", "max", "min"]))

    style = rng.random()
    if style < 0.6 and group_candidates:
        table, column = rng.choice(group_candidates)
        select = (AggregateExpr(_ref(table, column)),) + tuple(
            random_aggregate() for _ in range(rng.choice([1, 1, 2]))
        )
        group_by = (_ref(table, column),)
    elif style < 0.75:
        select = tuple(random_aggregate() for _ in range(rng.choice([1, 2])))
        group_by = ()
    else:
        picks = rng.sample(all_columns, k=min(len(all_columns), rng.choice([1, 2, 3])))
        select = tuple(AggregateExpr(_ref(table, column)) for table, column in picks)
        group_by = ()

    order_by = None
    if rng.random() < 0.5:
        order_by = OrderByClause(
            expression=rng.choice(select), direction=rng.choice([SortDirection.ASC, SortDirection.DESC])
        )

    return DVQuery(
        chart_type=ChartType.BAR,
        select=select,
        from_table=base,
        joins=joins,
        where=tuple(where),
        group_by=group_by,
        order_by=order_by,
    )


# -- DVQuery -> SQL -------------------------------------------------------------------


def _to_sql(query: DVQuery) -> str:
    def col(ref: ColumnRef) -> str:
        return f'"{ref.table}"."{ref.column}"'

    def item(expr: AggregateExpr) -> str:
        if expr.function is None:
            return col(expr.column)
        if expr.column.is_wildcard and not expr.column.table:
            return f"{expr.function}(*)"
        inner = col(expr.column)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.function}({inner})"

    def literal(value) -> str:
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        return repr(float(value)) if isinstance(value, float) else str(value)

    def condition(cond: Condition) -> str:
        if isinstance(cond.value, Subquery):
            sub = cond.value
            parts = [f'SELECT {item(sub.select)} FROM "{sub.from_table}"']
            for join in sub.joins:
                parts.append(f'JOIN "{join.table}" ON {col(join.left)} = {col(join.right)}')
            if sub.where:
                parts.append("WHERE " + " AND ".join(condition(inner) for inner in sub.where))
            return f"{col(cond.left)} {cond.operator.upper()} ({' '.join(parts)})"
        return f"{col(cond.left)} {cond.operator.upper()} {literal(cond.value)}"

    parts = [
        "SELECT " + ", ".join(item(expr) for expr in query.select),
        f'FROM "{query.from_table}"',
    ]
    for join in query.joins:
        parts.append(f'JOIN "{join.table}" ON {col(join.left)} = {col(join.right)}')
    if query.where:
        parts.append("WHERE " + " AND ".join(condition(cond) for cond in query.where))
    if query.group_by:
        parts.append("GROUP BY " + ", ".join(col(group) for group in query.group_by))
    if query.order_by is not None:
        parts.append(f"ORDER BY {item(query.order_by.expression)} {query.order_by.direction.value.upper()}")
    return " ".join(parts)


def _normalize(value):
    """Collapse int/float and round so both engines' arithmetic compares equal."""
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return round(float(value), 6)
    return str(value)


# -- the differential property --------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_executor_matches_sqlite(seed):
    rng = random.Random(seed)
    database, connection = _build_databases(rng)
    try:
        for _ in range(QUERIES_PER_SEED):
            query = _random_query(rng)
            sql = _to_sql(query)
            ours = QueryExecutor(database).execute(query)
            theirs = connection.execute(sql).fetchall()
            our_rows = [tuple(_normalize(value) for value in row) for row in ours.rows]
            their_rows = [tuple(_normalize(value) for value in row) for row in theirs]
            assert Counter(our_rows) == Counter(their_rows), (
                f"row multiset mismatch for {query.to_text()!r}\n  sql: {sql}"
            )
            if query.order_by is not None:
                # Ties may legitimately permute whole rows, but the ordered
                # column's value sequence must be identical.
                names = [expr.to_text() for expr in query.select]
                index = names.index(query.order_by.expression.to_text())
                assert [row[index] for row in our_rows] == [row[index] for row in their_rows], (
                    f"order mismatch for {query.to_text()!r}\n  sql: {sql}"
                )
    finally:
        connection.close()


def test_not_in_null_subquery_regression():
    """NOT IN over a subquery that yields NULL matches nothing (SQL 3VL).

    This is the divergence the differential suite originally uncovered: an
    aggregate subquery over an empty row set returns a single NULL, and the
    executor treated ``x NOT IN (NULL)`` as true for every row where SQL
    makes it unknown (so the row is filtered out).
    """
    rng = random.Random(0)
    database, connection = _build_databases(rng)
    try:
        subquery = Subquery(
            select=AggregateExpr(_ref("orders", "id"), function="max"),
            from_table="orders",
            where=(Condition(left=_ref("orders", "qty"), operator=">", value=10**6),),
        )
        query = DVQuery(
            chart_type=ChartType.BAR,
            select=(AggregateExpr(_ref("orders", "id")),),
            from_table="orders",
            where=(Condition(left=_ref("orders", "id"), operator="not in", value=subquery),),
        )
        ours = QueryExecutor(database).execute(query)
        theirs = connection.execute(_to_sql(query)).fetchall()
        assert ours.rows == [] and theirs == []
    finally:
        connection.close()


def test_null_not_in_empty_subquery_is_vacuously_true():
    """``NULL NOT IN (empty set)`` keeps the row: no comparison ever happens.

    Second NULL-semantics regression (caught in review of the first fix):
    with zero members there is nothing to compare against, so SQL evaluates
    NOT IN as true — even for a NULL left-hand side — and IN as false.
    """
    rng = random.Random(2)
    database, connection = _build_databases(rng)
    try:
        empty_subquery = Subquery(
            select=AggregateExpr(_ref("orders", "qty")),
            from_table="orders",
            where=(Condition(left=_ref("orders", "qty"), operator=">", value=10**6),),
        )
        for operator in ("in", "not in"):
            query = DVQuery(
                chart_type=ChartType.BAR,
                select=(AggregateExpr(_ref("orders", "id")), AggregateExpr(_ref("orders", "price"))),
                from_table="orders",
                where=(Condition(left=_ref("orders", "price"), operator=operator, value=empty_subquery),),
            )
            ours = QueryExecutor(database).execute(query)
            theirs = connection.execute(_to_sql(query)).fetchall()
            our_rows = Counter(tuple(_normalize(v) for v in row) for row in ours.rows)
            their_rows = Counter(tuple(_normalize(v) for v in row) for row in theirs)
            assert our_rows == their_rows, operator
            # NOT IN against nothing keeps every row, NULL prices included
            assert bool(ours.rows) == (operator == "not in")
    finally:
        connection.close()


def test_in_with_null_member_matches_only_real_members():
    """``x IN (...)`` still matches when the member set also contains NULL."""
    rng = random.Random(1)
    database, connection = _build_databases(rng)
    try:
        # orders.id IN (select orders.id ...) is a tautology over non-null ids;
        # widen the member set with NULLs via a LEFT-JOIN-free trick: compare
        # against the nullable price column instead.
        subquery = Subquery(select=AggregateExpr(_ref("orders", "price")), from_table="orders")
        query = DVQuery(
            chart_type=ChartType.BAR,
            select=(AggregateExpr(_ref("orders", "qty")), AggregateExpr(_ref("orders", "price"))),
            from_table="orders",
            where=(Condition(left=_ref("orders", "price"), operator="in", value=subquery),),
        )
        ours = QueryExecutor(database).execute(query)
        theirs = connection.execute(_to_sql(query)).fetchall()
        our_rows = Counter(tuple(_normalize(v) for v in row) for row in ours.rows)
        their_rows = Counter(tuple(_normalize(v) for v in row) for row in theirs)
        assert our_rows == their_rows
        # NULL prices never match themselves: every surviving row has a price.
        assert all(row[1] is not None for row in ours.rows)
    finally:
        connection.close()
