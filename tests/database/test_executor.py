"""Tests for DV query execution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database import Database, execute_query
from repro.database.schema import Column, ColumnType, DatabaseSchema, TableSchema
from repro.errors import ExecutionError
from repro.vql import parse_dv_query


class TestGroupCount:
    def test_count_by_country(self, gallery_database, pie_query_text):
        result = execute_query(parse_dv_query(pie_query_text), gallery_database)
        as_dict = dict(result.rows)
        assert as_dict == {"Fiji": 1, "United States": 5, "Zimbabwe": 1}

    def test_count_distinct(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select artist.country , count ( distinct artist.country ) from artist group by artist.country"
        )
        result = execute_query(query, gallery_database)
        assert all(row[1] == 1 for row in result.rows)


class TestAggregates:
    @pytest.mark.parametrize(
        "function,expected",
        [("sum", 46 + 47 + 52 + 50 + 55), ("avg", (46 + 47 + 52 + 50 + 55) / 5), ("max", 55), ("min", 46)],
    )
    def test_aggregates_over_group(self, gallery_database, function, expected):
        query = parse_dv_query(
            f"visualize bar select artist.country , {function} ( artist.age ) from artist group by artist.country"
        )
        result = execute_query(query, gallery_database)
        as_dict = dict(result.rows)
        assert as_dict["United States"] == pytest.approx(expected)

    def test_global_aggregate_without_group(self, gallery_database):
        query = parse_dv_query("visualize bar select artist.country , count ( artist.country ) from artist")
        result = execute_query(query, gallery_database)
        assert len(result) == 1
        assert result.rows[0][1] == 7


class TestWhereAndJoin:
    def test_where_filter(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select artist.country , count ( artist.country ) from artist "
            "where artist.age > 48 group by artist.country"
        )
        result = execute_query(query, gallery_database)
        assert dict(result.rows) == {"United States": 3}

    def test_string_comparison_is_case_insensitive(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select artist.country , count ( artist.country ) from artist "
            "where artist.country = 'fiji' group by artist.country"
        )
        result = execute_query(query, gallery_database)
        assert dict(result.rows) == {"Fiji": 1}

    def test_like_operator(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select artist.name , count ( artist.name ) from artist "
            "where artist.name like '%price%' group by artist.name"
        )
        result = execute_query(query, gallery_database)
        assert dict(result.rows) == {"Nick Price": 1}

    def test_join_counts(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select artist.country , count ( exhibition.exhibition_id ) from exhibition "
            "join artist on exhibition.artist_id = artist.artist_id group by artist.country"
        )
        result = execute_query(query, gallery_database)
        assert dict(result.rows) == {"Fiji": 1, "United States": 2, "Zimbabwe": 1}

    def test_order_by_desc(self, gallery_database, pie_query_text):
        query = parse_dv_query(pie_query_text + " order by count ( artist.country ) desc")
        result = execute_query(query, gallery_database)
        counts = [row[1] for row in result.rows]
        assert counts == sorted(counts, reverse=True)

    def test_subquery_not_in(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select artist.country , count ( artist.country ) from artist "
            "where artist.artist_id not in ( select exhibition.artist_id from exhibition ) group by artist.country"
        )
        result = execute_query(query, gallery_database)
        # Artists 3, 4, 5, 6 have no exhibitions; all from the United States.
        assert dict(result.rows) == {"United States": 4}


class TestBinning:
    def test_bin_by_year(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select exhibition.date , count ( exhibition.date ) from exhibition "
            "group by exhibition.date bin exhibition.date by year"
        )
        result = execute_query(query, gallery_database)
        assert dict(result.rows) == {"2004": 2, "2005": 1, "2006": 1}

    def test_bin_by_month(self, gallery_database):
        query = parse_dv_query(
            "visualize bar select exhibition.date , count ( exhibition.date ) from exhibition "
            "group by exhibition.date bin exhibition.date by month"
        )
        result = execute_query(query, gallery_database)
        assert "may" in dict(result.rows)


class TestErrors:
    def test_unknown_column(self, gallery_database):
        query = parse_dv_query("visualize bar select artist.salary , count ( artist.salary ) from artist group by artist.salary")
        with pytest.raises(ExecutionError):
            execute_query(query, gallery_database)

    def test_sum_of_text_column(self, gallery_database):
        query = parse_dv_query("visualize bar select artist.country , sum ( artist.name ) from artist group by artist.country")
        with pytest.raises(ExecutionError):
            execute_query(query, gallery_database)


class TestExecutionInvariants:
    @settings(max_examples=15, deadline=None)
    @given(ages=st.lists(st.integers(min_value=1, max_value=99), min_size=1, max_size=30))
    def test_group_counts_sum_to_row_count(self, ages):
        schema = DatabaseSchema("d", [TableSchema("people", [Column("age", ColumnType.NUMBER), Column("bucket")])])
        rows = [{"age": age, "bucket": "young" if age < 50 else "old"} for age in ages]
        database = Database(schema, data={"people": rows})
        query = parse_dv_query(
            "visualize bar select people.bucket , count ( people.bucket ) from people group by people.bucket"
        )
        result = execute_query(query, database)
        assert sum(row[1] for row in result.rows) == len(ages)

    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=30))
    def test_min_le_avg_le_max(self, values):
        schema = DatabaseSchema("d", [TableSchema("t", [Column("v", ColumnType.NUMBER), Column("g")])])
        database = Database(schema, data={"t": [{"v": value, "g": "all"} for value in values]})
        query = parse_dv_query(
            "visualize scatter select min ( t.v ) , max ( t.v ) from t group by t.g"
        )
        result = execute_query(query, database)
        minimum, maximum = result.rows[0]
        assert minimum <= maximum
