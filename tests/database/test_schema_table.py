"""Tests for the schema model and row storage."""

import pytest

from repro.database import Column, ColumnType, Database, DatabaseSchema, DataTable, ForeignKey, TableSchema
from repro.errors import SchemaError


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a"), Column("a")])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a")], primary_key="b")

    def test_duplicate_tables_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema("db", [TableSchema("t", [Column("a")]), TableSchema("t", [Column("b")])])

    def test_foreign_key_validation(self):
        with pytest.raises(SchemaError):
            DatabaseSchema(
                "db",
                [TableSchema("a", [Column("x")]), TableSchema("b", [Column("y")])],
                foreign_keys=[ForeignKey("a", "missing", "b", "y")],
            )

    def test_lookups(self, gallery_schema):
        assert gallery_schema.has_table("ARTIST")
        assert gallery_schema.table("artist").has_column("country")
        assert gallery_schema.find_column_table("attendance") == "exhibition"
        assert gallery_schema.find_column_table("nothing") is None

    def test_subschema(self, gallery_schema):
        sub = gallery_schema.subschema(["artist"])
        assert sub.table_names() == ["artist"]
        assert not sub.foreign_keys

    def test_subschema_empty_selection(self, gallery_schema):
        with pytest.raises(SchemaError):
            gallery_schema.subschema(["unknown"])


class TestDataTable:
    def test_insert_and_iterate(self):
        table = DataTable(TableSchema("t", [Column("a"), Column("b", ColumnType.NUMBER)]))
        table.insert({"a": "x", "b": 1})
        table.insert({"A": "y"})
        assert len(table) == 2
        assert table.rows()[1]["b"] is None

    def test_unknown_column_rejected(self):
        table = DataTable(TableSchema("t", [Column("a")]))
        with pytest.raises(SchemaError):
            table.insert({"zzz": 1})

    def test_column_and_distinct_values(self):
        table = DataTable(TableSchema("t", [Column("a")]), rows=[{"a": "x"}, {"a": "x"}, {"a": "y"}, {"a": None}])
        assert table.column_values("a") == ["x", "x", "y", None]
        assert table.distinct_values("a") == ["x", "y"]

    def test_missing_column_access(self):
        table = DataTable(TableSchema("t", [Column("a")]))
        with pytest.raises(SchemaError):
            table.column_values("b")


class TestDatabase:
    def test_table_access_and_counts(self, gallery_database):
        assert gallery_database.table("artist").name == "artist"
        assert gallery_database.total_rows() == 11
        with pytest.raises(SchemaError):
            gallery_database.table("missing")

    def test_subdatabase(self, gallery_database):
        sub = gallery_database.subdatabase(["artist"])
        assert sub.table_names() == ["artist"]
        assert len(sub.table("artist")) == 7
