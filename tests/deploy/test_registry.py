"""Tests for the versioned model registry (``repro.deploy.registry``).

Registration is append-only (versions are immutable once written), the JSON
persistence round-trips exactly, and ``build_pipeline`` refuses to activate
anything it cannot verify — including a checkpoint whose bytes changed since
``register_checkpoint`` fingerprinted them.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.deploy import DeploymentManifest, ModelRegistry
from repro.errors import ModelConfigError


def tiny_model(seed: int = 0) -> DataVisT5:
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=32, max_target_length=16, max_decode_length=8, seed=seed
    )
    corpus = [
        "<Question> how many parts are there ? <Answer> 3",
        "visualize bar select artist.country , count ( artist.country ) from artist",
    ]
    return DataVisT5.from_corpus(corpus, config=config, max_vocab_size=200)


def config_manifest(name: str = "heuristic", version: int = 1) -> DeploymentManifest:
    return DeploymentManifest(
        name=name,
        version=version,
        tasks=("vis_to_text", "fevisqa"),
        backends={"vis_to_text": {"type": "heuristics"}, "fevisqa": {"type": "heuristics"}},
    )


class TestRegistration:
    def test_register_get_latest_versions(self):
        registry = ModelRegistry()
        registry.register(config_manifest(version=1))
        registry.register(config_manifest(version=3))
        assert registry.get("heuristic@1").version == 1
        assert registry.get("heuristic").version == 3  # bare name -> latest
        assert registry.latest("heuristic").version == 3
        assert registry.versions("heuristic") == (1, 3)
        assert registry.names() == ("heuristic",)
        assert "heuristic@3" in registry and "heuristic@2" not in registry
        assert len(registry) == 2
        assert registry.next_version("heuristic") == 4
        assert registry.next_version("fresh") == 1

    def test_versions_are_immutable(self):
        registry = ModelRegistry()
        registry.register(config_manifest())
        with pytest.raises(ModelConfigError, match="immutable"):
            registry.register(config_manifest())

    def test_unknown_lookups_raise(self):
        registry = ModelRegistry()
        with pytest.raises(ModelConfigError, match="unknown deployment"):
            registry.get("ghost")
        registry.register(config_manifest())
        with pytest.raises(ModelConfigError, match="no version 9"):
            registry.get("heuristic@9")

    def test_remove(self):
        registry = ModelRegistry()
        registry.register(config_manifest(version=1))
        registry.register(config_manifest(version=2))
        removed = registry.remove("heuristic@1")
        assert removed.version == 1
        assert registry.versions("heuristic") == (2,)
        registry.remove("heuristic@2")
        assert registry.names() == ()


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        registry = ModelRegistry()
        registry.register(config_manifest(version=1))
        registry.register(config_manifest(name="other", version=7))
        path = registry.save(tmp_path / "registry.json")
        loaded = ModelRegistry.load(path)
        assert len(loaded) == 2
        assert loaded.get("heuristic@1") == registry.get("heuristic@1")
        assert loaded.get("other@7") == registry.get("other@7")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["repro_version"] == repro.__version__

    def test_file_backed_registry_persists_mutations(self, tmp_path):
        path = tmp_path / "registry.json"
        registry = ModelRegistry(path)
        registry.register(config_manifest())
        assert ModelRegistry.load(path).get("heuristic@1") is not None
        registry.remove("heuristic@1")
        assert len(ModelRegistry.load(path)) == 0

    def test_save_without_path_requires_target(self):
        with pytest.raises(ModelConfigError, match="backing path"):
            ModelRegistry().save()

    def test_load_rejects_missing_and_malformed_files(self, tmp_path):
        with pytest.raises(ModelConfigError, match="no registry file"):
            ModelRegistry.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json", encoding="utf-8")
        with pytest.raises(ModelConfigError, match="not valid JSON"):
            ModelRegistry.load(bad)
        shapeless = tmp_path / "shapeless.json"
        shapeless.write_text('{"something": "else"}', encoding="utf-8")
        with pytest.raises(ModelConfigError, match="deployments"):
            ModelRegistry.load(shapeless)

    def test_load_rejects_duplicate_entries(self, tmp_path):
        entry = config_manifest().as_dict()
        duplicated = tmp_path / "dup.json"
        duplicated.write_text(json.dumps({"deployments": [entry, entry]}), encoding="utf-8")
        with pytest.raises(ModelConfigError, match="twice"):
            ModelRegistry.load(duplicated)


class TestCheckpointLifecycle:
    def test_register_checkpoint_fingerprints_and_builds(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry.json")
        model = tiny_model()
        manifest = registry.register_checkpoint(
            "datavist5", model, tmp_path / "v1", tasks=("fevisqa",), metadata={"run": "seed-0"}
        )
        assert manifest.id == "datavist5@1"
        assert manifest.fingerprint.startswith("sha256:")
        assert registry.verify("datavist5@1") == manifest

        pipeline = registry.build_pipeline("datavist5@1")
        response = pipeline.fevisqa("how many parts are there ?", table="a | 1")
        assert response.ok
        # the reconstructed model predicts exactly what the registered one does
        assert pipeline.model.predict(response.source) == model.predict(response.source)

    def test_second_registration_mints_next_version(self, tmp_path):
        registry = ModelRegistry()
        registry.register_checkpoint("m", tiny_model(), tmp_path / "v1")
        manifest = registry.register_checkpoint("m", tiny_model(seed=1), tmp_path / "v2")
        assert manifest.version == 2

    def test_build_pipeline_rejects_tampered_checkpoint(self, tmp_path):
        registry = ModelRegistry()
        registry.register_checkpoint("m", tiny_model(), tmp_path / "v1")
        (tmp_path / "v1" / "weights.npz").write_bytes(b"corrupted")
        with pytest.raises(ModelConfigError, match="mismatch"):
            registry.build_pipeline("m@1")

    def test_build_pipeline_applies_precision_and_decode(self, tmp_path):
        registry = ModelRegistry()
        registry.register_checkpoint(
            "m", tiny_model(), tmp_path / "v1", precision="float32", decode={"use_cache": False}
        )
        pipeline = registry.build_pipeline("m")
        assert pipeline.config.precision == "float32"
        assert pipeline.config.use_cache is False

    def test_build_pipeline_quantizes_int8_on_load(self, tmp_path):
        registry = ModelRegistry()
        registry.register_checkpoint("m", tiny_model(), tmp_path / "v1", precision="int8")
        pipeline = registry.build_pipeline("m")
        assert pipeline.model.quantized

    def test_build_pipeline_from_config_manifest(self):
        registry = ModelRegistry()
        registry.register(config_manifest())
        pipeline = registry.build_pipeline("heuristic")
        assert pipeline.fevisqa("how many parts are there ?", table="a | 1").ok
