"""Calibration through the deploy layer: manifests, registries, tampering.

A calibrated model's :class:`QuantPolicy` must survive the full deployment
loop: ``register_checkpoint`` records it in the manifest's ``calibration``
field (and the checkpoint itself embeds it under the fingerprint),
``build_pipeline`` reconstructs the exact mixed-precision layout when
quantizing a float checkpoint on load, and any edit to the persisted policy
— in the registry JSON or inside ``weights.npz`` — fails verification
before a pipeline is ever built.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DataVisT5Config
from repro.core.model import QUANT_POLICY_KEY, DataVisT5
from repro.deploy import DeploymentManifest, ModelRegistry
from repro.errors import ModelConfigError
from repro.nn.calibration import QuantPolicy, quantizable_modules

CORPUS = [
    "visualize bar select artist.country , count ( artist.country ) from artist",
    "how many artists joined after 1998 ?",
    "show the attendance of every exhibition by date",
]


def calibrated_model(seed: int = 0) -> DataVisT5:
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=32, max_target_length=16, max_decode_length=6, seed=seed
    )
    model = DataVisT5.from_corpus(CORPUS, config=config, max_vocab_size=200)
    model.calibrate(CORPUS, n=3, target_agreement=0.9)
    if not model.quant_policy.float32_modules:
        modes = dict(model.quant_policy.modes)
        modes["shared_embedding"] = "float32"
        model.quant_policy = QuantPolicy(modes=modes, alpha=model.quant_policy.alpha)
    return model


def policy_dict() -> dict:
    return QuantPolicy(modes={"shared_embedding": "float32"}, alpha=0.5).as_dict()


class TestManifestCalibrationField:
    def test_calibration_requires_checkpoint(self):
        with pytest.raises(ModelConfigError, match="calibration"):
            DeploymentManifest(
                name="m",
                version=1,
                backends={"fevisqa": {"type": "heuristics"}},
                calibration=policy_dict(),
            )

    def test_calibration_round_trips(self):
        manifest = DeploymentManifest(
            name="m", version=1, checkpoint="ckpt", calibration=policy_dict()
        )
        rebuilt = DeploymentManifest.from_dict(manifest.as_dict())
        assert rebuilt.calibration == policy_dict()

    def test_malformed_calibration_rejected(self):
        broken = policy_dict()
        broken["modes"]["shared_embedding"] = "int3"
        with pytest.raises(ModelConfigError):
            DeploymentManifest(name="m", version=1, checkpoint="ckpt", calibration=broken)
        with pytest.raises(ModelConfigError):
            DeploymentManifest(
                name="m", version=1, checkpoint="ckpt", calibration={**policy_dict(), "extra": 1}
            )


class TestRegistryCalibration:
    def test_register_checkpoint_records_policy(self, tmp_path):
        model = calibrated_model()
        registry = ModelRegistry()
        manifest = registry.register_checkpoint("calibrated", model, tmp_path / "ckpt")
        assert manifest.calibration == model.quant_policy.as_dict()

    def test_register_uncalibrated_checkpoint_records_nothing(self, tmp_path):
        config = DataVisT5Config.from_preset("tiny", max_input_length=32, max_target_length=16)
        model = DataVisT5.from_corpus(CORPUS, config=config, max_vocab_size=200)
        registry = ModelRegistry()
        manifest = registry.register_checkpoint("plain", model, tmp_path / "ckpt")
        assert manifest.calibration is None

    def test_build_pipeline_reconstructs_calibrated_layout(self, tmp_path):
        # Register a *float* calibrated checkpoint with precision="int8":
        # build_pipeline must quantize under the recorded policy, not the
        # uncalibrated default.
        model = calibrated_model()
        registry = ModelRegistry()
        registry.register_checkpoint("calibrated", model, tmp_path / "ckpt", precision="int8")
        pipeline = registry.build_pipeline("calibrated")
        deployed = pipeline.model
        assert deployed.quantized
        assert deployed.quant_policy == model.quant_policy
        by_name = dict(quantizable_modules(deployed.model))
        for name in model.quant_policy.float32_modules:
            assert not by_name[name].quantized

    def test_deployed_predictions_match_local_quantization(self, tmp_path):
        model = calibrated_model()
        registry = ModelRegistry()
        registry.register_checkpoint("calibrated", model, tmp_path / "ckpt", precision="int8")
        pipeline = registry.build_pipeline("calibrated")
        model.quantize_int8()
        question = "how many artists joined after 1998 ?"
        assert pipeline.model.predict_batch([question]) == model.predict_batch([question])

    def test_registry_json_round_trips_calibration(self, tmp_path):
        model = calibrated_model()
        registry = ModelRegistry(tmp_path / "registry.json")
        registry.register_checkpoint("calibrated", model, tmp_path / "ckpt")
        reloaded = ModelRegistry.load(tmp_path / "registry.json")
        assert reloaded.get("calibrated").calibration == model.quant_policy.as_dict()


class TestTamperDetection:
    def test_edited_policy_inside_weights_fails_fingerprint(self, tmp_path):
        # The policy lives inside weights.npz, under the checkpoint
        # fingerprint: flipping one mode in the embedded JSON must be caught
        # by verify() before any pipeline is built.
        model = calibrated_model().quantize_int8()
        registry = ModelRegistry()
        registry.register_checkpoint("calibrated", model, tmp_path / "ckpt")
        weights_path = tmp_path / "ckpt" / "weights.npz"
        with np.load(weights_path) as data:
            state = {name: data[name] for name in data.files}
        state[QUANT_POLICY_KEY] = np.array(
            str(state[QUANT_POLICY_KEY]).replace('"float32"', '"int8_asym"', 1)
        )
        np.savez(weights_path, **state)
        with pytest.raises(ModelConfigError, match="fingerprint"):
            registry.verify("calibrated")
        with pytest.raises(ModelConfigError, match="fingerprint"):
            registry.build_pipeline("calibrated")

    def test_edited_manifest_calibration_fails_validation(self, tmp_path):
        import json

        model = calibrated_model()
        registry = ModelRegistry(tmp_path / "registry.json")
        registry.register_checkpoint("calibrated", model, tmp_path / "ckpt")
        payload = json.loads((tmp_path / "registry.json").read_text(encoding="utf-8"))
        payload["deployments"][0]["calibration"]["modes"]["shared_embedding"] = "int3"
        (tmp_path / "registry.json").write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ModelConfigError):
            ModelRegistry.load(tmp_path / "registry.json")
