"""Tests for deployment manifests (``repro.deploy.manifest``).

A manifest must be impossible to hold wrong: validation runs at
construction, the JSON round trip is exact and strict (unknown fields are
errors, not silently dropped), and the checkpoint fingerprint catches any
byte-level drift between registration and activation.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5, checkpoint_fingerprint
from repro.deploy import DeploymentManifest
from repro.errors import ModelConfigError


def checkpoint_manifest(**overrides) -> DeploymentManifest:
    payload = dict(
        name="datavist5",
        version=2,
        tasks=("text_to_vis", "fevisqa"),
        checkpoint="/tmp/ckpt",
        fingerprint="sha256:" + "0" * 64,
        precision="float32",
        decode={"use_cache": True},
        metadata={"trained_on": "nvbench"},
    )
    payload.update(overrides)
    return DeploymentManifest(**payload)


def tiny_model() -> DataVisT5:
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=16, max_target_length=8, max_decode_length=4
    )
    return DataVisT5.from_corpus(["visualize bar select a from b"], config=config, max_vocab_size=64)


class TestValidation:
    def test_valid_manifest_constructs(self):
        manifest = checkpoint_manifest()
        assert manifest.id == "datavist5@2"
        assert manifest.repro_version == repro.__version__

    def test_config_backed_manifest_constructs(self):
        manifest = DeploymentManifest(
            name="heuristic", version=1, backends={"vis_to_text": {"type": "heuristics"}}
        )
        assert manifest.checkpoint is None

    def test_exactly_one_backend_family(self):
        with pytest.raises(ModelConfigError, match="exactly one"):
            DeploymentManifest(name="x", version=1)
        with pytest.raises(ModelConfigError, match="exactly one"):
            checkpoint_manifest(backends={"vis_to_text": {"type": "heuristics"}})

    def test_name_and_version_rules(self):
        with pytest.raises(ModelConfigError):
            checkpoint_manifest(name="")
        with pytest.raises(ModelConfigError):
            checkpoint_manifest(name="bad@name")
        with pytest.raises(ModelConfigError):
            checkpoint_manifest(version=0)
        with pytest.raises(ModelConfigError):
            checkpoint_manifest(version="2")
        with pytest.raises(ModelConfigError):
            checkpoint_manifest(version=True)

    def test_task_rules(self):
        with pytest.raises(ModelConfigError):
            checkpoint_manifest(tasks=())
        with pytest.raises(ModelConfigError, match="unknown tasks"):
            checkpoint_manifest(tasks=("text_to_vis", "table_to_text"))

    def test_fingerprint_rules(self):
        with pytest.raises(ModelConfigError, match="sha256"):
            checkpoint_manifest(fingerprint="md5:abc")
        with pytest.raises(ModelConfigError, match="checkpoint"):
            DeploymentManifest(
                name="x",
                version=1,
                backends={"vis_to_text": {"type": "heuristics"}},
                fingerprint="sha256:" + "0" * 64,
            )

    def test_precision_and_decode_rules(self):
        with pytest.raises(ModelConfigError):
            checkpoint_manifest(precision="fp16")
        with pytest.raises(ModelConfigError, match="unknown decode"):
            checkpoint_manifest(decode={"num_beams": 4})
        with pytest.raises(ModelConfigError, match="use_cache"):
            checkpoint_manifest(decode={"use_cache": "yes"})


class TestRoundTrip:
    def test_as_dict_from_dict_is_identity(self):
        manifest = checkpoint_manifest()
        assert DeploymentManifest.from_dict(manifest.as_dict()) == manifest

    def test_survives_json(self):
        manifest = checkpoint_manifest()
        wire = json.loads(json.dumps(manifest.as_dict()))
        assert DeploymentManifest.from_dict(wire) == manifest

    def test_unknown_fields_rejected(self):
        payload = checkpoint_manifest().as_dict()
        payload["surprise"] = 1
        with pytest.raises(ModelConfigError, match="surprise"):
            DeploymentManifest.from_dict(payload)

    def test_missing_identity_rejected(self):
        with pytest.raises(ModelConfigError, match="missing"):
            DeploymentManifest.from_dict({"name": "x"})

    def test_bump_mints_next_version(self):
        manifest = checkpoint_manifest()
        bumped = manifest.bump(checkpoint="/tmp/ckpt-v3", fingerprint=None)
        assert bumped.version == manifest.version + 1
        assert bumped.name == manifest.name
        assert bumped.checkpoint == "/tmp/ckpt-v3"


class TestFingerprint:
    def test_fingerprint_matches_file_content(self, tmp_path):
        model = tiny_model()
        model.save(tmp_path / "ckpt")
        fingerprint = checkpoint_fingerprint(tmp_path / "ckpt")
        assert fingerprint.startswith("sha256:")
        # hashing the weights file directly gives the same identity
        assert checkpoint_fingerprint(tmp_path / "ckpt" / "weights.npz") == fingerprint

    def test_missing_weights_raise(self, tmp_path):
        with pytest.raises(ModelConfigError, match="fingerprint"):
            checkpoint_fingerprint(tmp_path)

    def test_verify_checkpoint_detects_tampering(self, tmp_path):
        model = tiny_model()
        model.save(tmp_path / "ckpt")
        manifest = checkpoint_manifest(
            checkpoint=str(tmp_path / "ckpt"),
            fingerprint=checkpoint_fingerprint(tmp_path / "ckpt"),
        )
        manifest.verify_checkpoint()  # pristine: passes
        (tmp_path / "ckpt" / "weights.npz").write_bytes(b"not the weights you registered")
        with pytest.raises(ModelConfigError, match="mismatch"):
            manifest.verify_checkpoint()

    def test_verify_checkpoint_skips_unfingerprinted(self):
        manifest = checkpoint_manifest(fingerprint=None, checkpoint="/nowhere/at/all")
        manifest.verify_checkpoint()  # nothing recorded, nothing to prove
