"""Tests for the routing layer (``repro.deploy.router``).

The load-bearing property is determinism: routing is a pure function of
``(task, request key)``, so retries land on the version that served them the
first time, canary splits hit their configured fractions over many keys, and
rebuilding an identical router reproduces every decision.  The rest covers
immutability of updates, shadow sampling independence, the rollback
primitive (``without``), and guard/weight validation.
"""

from __future__ import annotations

import pytest

from repro.deploy import CanaryGuard, Router, ShadowSpec, deployment_id, hash_fraction, parse_ref
from repro.errors import ModelConfigError

TASK = "text_to_vis"


def keys(count: int) -> list[str]:
    return [f"request key {index}" for index in range(count)]


class TestDeterminism:
    def test_same_key_same_deployment(self):
        router = Router({TASK: {"stable@1": 0.8, "canary@2": 0.2}})
        for key in keys(50):
            first = router.route(TASK, key)
            assert all(router.route(TASK, key) == first for _ in range(5))

    def test_rebuilt_router_reproduces_decisions(self):
        table = {TASK: {"stable@1": 0.7, "canary@2": 0.3}}
        first, second = Router(table), Router(table)
        assert [first.route(TASK, key) for key in keys(200)] == [
            second.route(TASK, key) for key in keys(200)
        ]

    def test_split_fraction_is_accurate(self):
        router = Router({TASK: {"stable@1": 0.8, "canary@2": 0.2}})
        sample = [router.route(TASK, key) for key in keys(10000)]
        observed = sample.count("canary@2") / len(sample)
        assert observed == pytest.approx(0.2, abs=0.02)

    def test_weights_are_relative_not_normalized(self):
        fractional = Router({TASK: {"a@1": 0.75, "b@1": 0.25}})
        integral = Router({TASK: {"a@1": 3, "b@1": 1}})
        sample = keys(500)
        assert [fractional.route(TASK, key) for key in sample] == [
            integral.route(TASK, key) for key in sample
        ]

    def test_zero_weight_deployment_never_selected(self):
        router = Router({TASK: {"stable@1": 1.0, "dead@1": 0.0}})
        assert all(router.route(TASK, key) == "stable@1" for key in keys(500))

    def test_unrouted_task_returns_none(self):
        assert Router().route(TASK, "anything") is None
        assert Router({"vis_to_text": {"a@1": 1.0}}).route(TASK, "anything") is None


class TestShadow:
    def test_shadow_fraction_is_accurate(self):
        router = Router(shadows={TASK: ShadowSpec("candidate@2", 0.3)})
        sampled = sum(router.shadow(TASK, key) is not None for key in keys(10000))
        assert sampled / 10000 == pytest.approx(0.3, abs=0.02)

    def test_shadow_sampling_independent_of_route_hash(self):
        # Salted separately: the shadow population must not be the canary
        # population in disguise.
        router = Router(
            {TASK: {"stable@1": 0.7, "canary@2": 0.3}},
            shadows={TASK: ShadowSpec("candidate@3", 0.3)},
        )
        shadowed = [key for key in keys(5000) if router.shadow(TASK, key) is not None]
        canaried = sum(router.route(TASK, key) == "canary@2" for key in shadowed)
        assert canaried / len(shadowed) == pytest.approx(0.3, abs=0.05)

    def test_shadow_deterministic(self):
        router = Router(shadows={TASK: ShadowSpec("candidate@2", 0.5)})
        for key in keys(50):
            assert router.shadow(TASK, key) == router.shadow(TASK, key)

    def test_no_shadow_configured(self):
        assert Router().shadow(TASK, "key") is None


class TestImmutability:
    def test_with_routes_leaves_original_untouched(self):
        original = Router({TASK: {"stable@1": 1.0}})
        derived = original.with_routes(TASK, {"stable@1": 0.5, "canary@2": 0.5})
        assert original.weights(TASK) == {"stable@1": 1.0}
        assert derived.weights(TASK) == {"stable@1": 0.5, "canary@2": 0.5}

    def test_with_shadow_and_clear(self):
        original = Router({TASK: {"stable@1": 1.0}})
        shadowed = original.with_shadow(TASK, "candidate@2", 0.25)
        assert shadowed.describe()[TASK]["shadow"] == {"deployment": "candidate@2", "fraction": 0.25}
        cleared = shadowed.with_shadow(TASK, "candidate@2", 0.0)
        assert cleared.describe()[TASK]["shadow"] is None
        assert original.describe()[TASK]["shadow"] is None

    def test_without_strips_routes_and_shadows(self):
        router = Router(
            {TASK: {"stable@1": 0.5, "canary@2": 0.5}, "fevisqa": {"canary@2": 1.0}},
            shadows={"vis_to_text": ShadowSpec("canary@2", 0.5)},
        )
        reverted = router.without("canary@2")
        assert reverted.weights(TASK) == {"stable@1": 0.5}
        # a task whose only deployment was removed becomes unrouted
        assert reverted.route("fevisqa", "key") is None
        assert reverted.shadow("vis_to_text", "key") is None
        assert "canary@2" not in reverted.deployments()

    def test_without_task(self):
        router = Router(
            {TASK: {"a@1": 1.0}, "fevisqa": {"b@1": 1.0}},
            shadows={TASK: ShadowSpec("b@1", 0.5)},
        )
        cleared = router.without_task(TASK)
        assert cleared.route(TASK, "key") is None
        assert cleared.shadow(TASK, "key") is None
        assert cleared.weights("fevisqa") == {"b@1": 1.0}

    def test_describe_snapshot_is_detached(self):
        router = Router({TASK: {"a@1": 1.0}})
        snapshot = router.describe()
        snapshot[TASK]["weights"]["a@1"] = 99.0
        assert router.weights(TASK) == {"a@1": 1.0}


class TestValidation:
    def test_empty_or_nonpositive_weights_rejected(self):
        with pytest.raises(ModelConfigError):
            Router({TASK: {}})
        with pytest.raises(ModelConfigError):
            Router({TASK: {"a@1": 0.0}})
        with pytest.raises(ModelConfigError):
            Router({TASK: {"a@1": -1.0}})

    def test_non_finite_and_non_numeric_weights_rejected(self):
        with pytest.raises(ModelConfigError):
            Router({TASK: {"a@1": float("nan")}})
        with pytest.raises(ModelConfigError):
            Router({TASK: {"a@1": float("inf")}})
        with pytest.raises(ModelConfigError):
            Router({TASK: {"a@1": "heavy"}})

    def test_shadow_spec_validation(self):
        with pytest.raises(ModelConfigError):
            ShadowSpec("candidate@1", 0.0)
        with pytest.raises(ModelConfigError):
            ShadowSpec("candidate@1", 1.5)
        with pytest.raises(ModelConfigError):
            ShadowSpec("", 0.5)


class TestCanaryGuard:
    def test_reverts_only_past_minimum_sample(self):
        guard = CanaryGuard("canary@2", max_error_rate=0.2, min_requests=10)
        assert not guard.should_revert(completed=0, backend_errors=9)  # too few resolved
        assert guard.should_revert(completed=0, backend_errors=10)

    def test_threshold_is_strict(self):
        guard = CanaryGuard("canary@2", max_error_rate=0.5, min_requests=2)
        assert not guard.should_revert(completed=1, backend_errors=1)  # exactly 0.5
        assert guard.should_revert(completed=1, backend_errors=2)

    def test_validation(self):
        with pytest.raises(ModelConfigError):
            CanaryGuard("canary@2", max_error_rate=1.0)
        with pytest.raises(ModelConfigError):
            CanaryGuard("canary@2", max_error_rate=-0.1)
        with pytest.raises(ModelConfigError):
            CanaryGuard("canary@2", max_error_rate=0.5, min_requests=0)


class TestReferences:
    def test_deployment_id_and_parse_ref_round_trip(self):
        assert parse_ref(deployment_id("captioner", 3)) == ("captioner", 3)
        assert parse_ref("captioner") == ("captioner", None)

    def test_malformed_references_rejected(self):
        for bad in ("", "@3", "a@b@c", "a@", "a@x", "a@-1"):
            with pytest.raises(ModelConfigError):
                parse_ref(bad)

    def test_hash_fraction_range_and_salting(self):
        values = [hash_fraction("route", TASK, key) for key in keys(1000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert hash_fraction("route", TASK, "k") != hash_fraction("shadow", TASK, "k")
