"""LRU cache behaviour under concurrent access (``repro.serving.cache``).

The serving design keeps cache *writes* on the event-loop thread, but the
deploy layer's worker shards and library callers on other threads may share
a pipeline, so the cache must stay coherent under raw concurrent use:
counters that add up, bounded size, deterministic LRU eviction order, and no
torn entries (a key never yields another key's value, even mid-eviction).
"""

from __future__ import annotations

import threading

import pytest

from repro.errors import ModelConfigError
from repro.serving.cache import LRUCache, normalize_key


class TestEvictionOrder:
    def test_lru_eviction_is_recency_ordered(self):
        cache = LRUCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        cache.get("a")  # refresh: 'b' is now the stalest
        cache.put("d", "D")
        assert "b" not in cache
        assert [key for key in cache] == ["c", "a", "d"]
        assert cache.evictions == 1

    def test_put_refreshes_recency_too(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update refreshes
        cache.put("c", 3)
        assert "b" not in cache and cache.get("a") == 10

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(capacity=0)
        cache.put("a", 1)
        assert len(cache) == 0 and cache.get("a") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ModelConfigError):
            LRUCache(capacity=-1)


class TestConcurrentAccess:
    THREADS = 8
    OPS_PER_THREAD = 2000
    CAPACITY = 32
    KEY_SPACE = 64  # 2x capacity: constant eviction pressure

    @staticmethod
    def value_for(key: str) -> tuple[str, str]:
        # The value embeds its key, so a torn entry (one key answering with
        # another key's value) is directly observable.
        return (key, f"payload:{key}")

    def test_no_torn_entries_under_contention(self):
        cache = LRUCache(capacity=self.CAPACITY, name="stress")
        observed_tears: list[tuple] = []
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_id: int) -> None:
            barrier.wait()  # maximize overlap
            for step in range(self.OPS_PER_THREAD):
                key = f"key-{(worker_id * 31 + step * 7) % self.KEY_SPACE}"
                value = cache.get_or_compute(key, lambda key=key: self.value_for(key))
                if value[0] != key:
                    observed_tears.append((key, value))

        threads = [threading.Thread(target=worker, args=(index,)) for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert observed_tears == []
        # whatever survived eviction is still internally consistent
        for key in list(cache):
            value = cache.get(key)
            if value is not None:  # may race with nothing here; single-threaded now
                assert value == self.value_for(key)

    def test_counters_add_up_under_contention(self):
        cache = LRUCache(capacity=self.CAPACITY, name="counted")
        total_ops = self.THREADS * self.OPS_PER_THREAD
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for step in range(self.OPS_PER_THREAD):
                key = f"key-{(worker_id + step) % self.KEY_SPACE}"
                cache.get_or_compute(key, lambda key=key: self.value_for(key))

        threads = [threading.Thread(target=worker, args=(index,)) for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # every lookup was either a hit or a miss — nothing double-counted,
        # nothing lost — and the cache never grew past its bound
        assert cache.hits + cache.misses == total_ops
        assert len(cache) <= self.CAPACITY
        # every miss stores an entry (two racing misses on one key collapse
        # to one insert), and everything not resident was evicted
        assert cache.evictions <= cache.misses - len(cache)
        assert cache.evictions >= self.KEY_SPACE - self.CAPACITY
        stats = cache.stats()
        assert stats["hits"] == cache.hits and stats["misses"] == cache.misses

    def test_hit_and_eviction_bounds_with_disjoint_working_sets(self):
        # Each worker shard hammers its own small working set that fits the
        # cache alongside the others: after warm-up, everything should hit.
        cache = LRUCache(capacity=self.THREADS * 4)
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_id: int) -> None:
            barrier.wait()
            for step in range(self.OPS_PER_THREAD):
                key = f"shard-{worker_id}-{step % 4}"
                cache.get_or_compute(key, lambda key=key: self.value_for(key))

        threads = [threading.Thread(target=worker, args=(index,)) for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.evictions == 0
        assert len(cache) == self.THREADS * 4
        # at most one miss per key per racing thread; in practice far fewer
        assert cache.misses <= self.THREADS * 4 * self.THREADS
        assert cache.hits >= self.THREADS * (self.OPS_PER_THREAD - 4 * self.THREADS)
        for key in list(cache):  # snapshot: get() refreshes recency mid-iteration
            assert cache.get(key) == self.value_for(key)


class TestNormalizeKey:
    def test_collapses_case_and_whitespace(self):
        assert normalize_key("Show  ME \n charts") == normalize_key("show me charts")

    def test_part_boundaries_are_unambiguous(self):
        assert normalize_key("a b", "c") != normalize_key("a", "b c")
