"""Property tests for the Response wire format (``as_dict`` / ``from_dict``).

``Response.as_dict`` is how responses — and the deploy layer's
shadow-comparison records — cross process boundaries; ``from_dict`` must be
its exact inverse, including through a JSON encode/decode, for every
combination of success artifacts, error codes and telemetry.  The query AST
collapses to text on the way out and is re-parsed on the way in, so the
round trip also leans on the parser's parse/to_text stability.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelConfigError
from repro.serving import ERROR_CODES, SERVABLE_TASKS, Response
from repro.vql.parser import parse_dv_query

QUERY_TEXTS = (
    "visualize bar select artist.country , count ( artist.country ) from artist "
    "group by artist.country",
    "visualize pie select artist.country , count ( artist.country ) from artist "
    "group by artist.country",
    "visualize scatter select exhibition.attendance , exhibition.exhibition_id from exhibition",
    "visualize line select exhibition.date , sum ( exhibition.attendance ) from exhibition "
    "group by exhibition.date order by exhibition.date asc",
)
QUERIES = tuple(parse_dv_query(text) for text in QUERY_TEXTS)

text = st.text(max_size=40)
json_scalars = st.one_of(st.none(), st.booleans(), st.integers(-1000, 1000), text)
vega_lite = st.one_of(
    st.none(),
    st.dictionaries(
        st.sampled_from(["mark", "encoding", "x", "y", "field", "type"]),
        st.one_of(json_scalars, st.dictionaries(text, json_scalars, max_size=3)),
        max_size=4,
    ),
)
telemetry = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "cache_hit": st.booleans(),
            "queue_ms": st.floats(0, 1000, allow_nan=False),
            "batch_size": st.one_of(st.none(), st.integers(1, 64)),
            "deployment": st.one_of(st.none(), st.sampled_from(["pipeline@0", "model@3"])),
        }
    ),
)


@st.composite
def responses(draw) -> Response:
    errored = draw(st.booleans())
    return Response(
        task=draw(st.sampled_from(SERVABLE_TASKS)),
        output="" if errored else draw(text),
        source=draw(text),
        cached=draw(st.booleans()),
        query=None if errored else draw(st.one_of(st.none(), st.sampled_from(QUERIES))),
        vega_lite=None if errored else draw(vega_lite),
        valid=draw(st.one_of(st.none(), st.booleans())),
        request_id=draw(st.one_of(st.none(), text)),
        error=draw(st.sampled_from(ERROR_CODES)) if errored else None,
        detail=draw(text) if errored else None,
        telemetry=draw(telemetry),
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(response=responses())
    def test_from_dict_inverts_as_dict_through_json(self, response):
        wire = json.loads(json.dumps(response.as_dict()))
        rebuilt = Response.from_dict(wire)
        # dataclass equality covers everything except telemetry (excluded
        # from __eq__ by design), so pin it separately.
        assert rebuilt == response
        assert rebuilt.telemetry == response.telemetry
        assert rebuilt.ok == response.ok

    @settings(max_examples=50, deadline=None)
    @given(response=responses())
    def test_round_trip_is_idempotent(self, response):
        once = Response.from_dict(response.as_dict())
        twice = Response.from_dict(once.as_dict())
        assert twice == once
        assert twice.telemetry == once.telemetry

    def test_query_ast_survives_the_text_collapse(self):
        for query in QUERIES:
            response = Response(task="text_to_vis", output=query.to_text(), query=query)
            assert Response.from_dict(response.as_dict()).query == query


class TestStrictness:
    def test_unknown_fields_are_rejected(self):
        payload = Response(task="fevisqa", output="3").as_dict()
        payload["extra"] = "field"
        with pytest.raises(ModelConfigError, match="extra"):
            Response.from_dict(payload)

    def test_missing_identity_is_rejected(self):
        with pytest.raises(ModelConfigError, match="task"):
            Response.from_dict({"output": "3"})
        with pytest.raises(ModelConfigError, match="output"):
            Response.from_dict({"task": "fevisqa"})

    def test_empty_query_text_maps_to_none(self):
        payload = Response(task="text_to_vis", output="").as_dict()
        assert payload["query"] is None
        assert Response.from_dict(payload).query is None
