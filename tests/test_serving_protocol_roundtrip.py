"""Property tests for the serving wire formats.

``Response.as_dict`` is how responses — and the deploy layer's
shadow-comparison records — cross process boundaries; ``from_dict`` must be
its exact inverse, including through a JSON encode/decode, for every
combination of success artifacts, error codes and telemetry.  The query AST
collapses to text on the way out and is re-parsed on the way in, so the
round trip also leans on the parser's parse/to_text stability.

The process-sharded tier adds the request direction and the framing layer
(:mod:`repro.serving.transport`): ``request_to_wire`` / ``request_from_wire``
must reconstruct an equal :class:`Request` (up to the documented chart
AST-to-text collapse) for every task shape, structural schemas and non-ASCII
payloads included, and the length-prefixed frame codec must survive
arbitrary chunking — a non-blocking reader sees pipe bytes in whatever
slices the kernel hands it.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database.schema import Column, ColumnType, DatabaseSchema, ForeignKey, TableSchema
from repro.errors import ModelConfigError
from repro.serving import (
    ERROR_CODES,
    SERVABLE_TASKS,
    FrameDecoder,
    Request,
    Response,
    ResponseChunk,
    TransportError,
    chunk_from_wire,
    chunk_to_wire,
    request_from_wire,
    request_to_wire,
    schema_from_wire,
    schema_to_wire,
)
from repro.serving.transport import encode_frame, read_frame, write_frame
from repro.vql.ast import DVQuery
from repro.vql.parser import parse_dv_query

QUERY_TEXTS = (
    "visualize bar select artist.country , count ( artist.country ) from artist "
    "group by artist.country",
    "visualize pie select artist.country , count ( artist.country ) from artist "
    "group by artist.country",
    "visualize scatter select exhibition.attendance , exhibition.exhibition_id from exhibition",
    "visualize line select exhibition.date , sum ( exhibition.attendance ) from exhibition "
    "group by exhibition.date order by exhibition.date asc",
)
QUERIES = tuple(parse_dv_query(text) for text in QUERY_TEXTS)

text = st.text(max_size=40)
json_scalars = st.one_of(st.none(), st.booleans(), st.integers(-1000, 1000), text)
vega_lite = st.one_of(
    st.none(),
    st.dictionaries(
        st.sampled_from(["mark", "encoding", "x", "y", "field", "type"]),
        st.one_of(json_scalars, st.dictionaries(text, json_scalars, max_size=3)),
        max_size=4,
    ),
)
telemetry = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "cache_hit": st.booleans(),
            "queue_ms": st.floats(0, 1000, allow_nan=False),
            "batch_size": st.one_of(st.none(), st.integers(1, 64)),
            "deployment": st.one_of(st.none(), st.sampled_from(["pipeline@0", "model@3"])),
        }
    ),
)


@st.composite
def responses(draw) -> Response:
    errored = draw(st.booleans())
    return Response(
        task=draw(st.sampled_from(SERVABLE_TASKS)),
        output="" if errored else draw(text),
        source=draw(text),
        cached=draw(st.booleans()),
        query=None if errored else draw(st.one_of(st.none(), st.sampled_from(QUERIES))),
        vega_lite=None if errored else draw(vega_lite),
        valid=draw(st.one_of(st.none(), st.booleans())),
        request_id=draw(st.one_of(st.none(), text)),
        error=draw(st.sampled_from(ERROR_CODES)) if errored else None,
        detail=draw(text) if errored else None,
        telemetry=draw(telemetry),
    )


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(response=responses())
    def test_from_dict_inverts_as_dict_through_json(self, response):
        wire = json.loads(json.dumps(response.as_dict()))
        rebuilt = Response.from_dict(wire)
        # dataclass equality covers everything except telemetry (excluded
        # from __eq__ by design), so pin it separately.
        assert rebuilt == response
        assert rebuilt.telemetry == response.telemetry
        assert rebuilt.ok == response.ok

    @settings(max_examples=50, deadline=None)
    @given(response=responses())
    def test_round_trip_is_idempotent(self, response):
        once = Response.from_dict(response.as_dict())
        twice = Response.from_dict(once.as_dict())
        assert twice == once
        assert twice.telemetry == once.telemetry

    def test_query_ast_survives_the_text_collapse(self):
        for query in QUERIES:
            response = Response(task="text_to_vis", output=query.to_text(), query=query)
            assert Response.from_dict(response.as_dict()).query == query


class TestStrictness:
    def test_unknown_fields_are_rejected(self):
        payload = Response(task="fevisqa", output="3").as_dict()
        payload["extra"] = "field"
        with pytest.raises(ModelConfigError, match="extra"):
            Response.from_dict(payload)

    def test_missing_identity_is_rejected(self):
        with pytest.raises(ModelConfigError, match="task"):
            Response.from_dict({"output": "3"})
        with pytest.raises(ModelConfigError, match="output"):
            Response.from_dict({"task": "fevisqa"})

    def test_empty_query_text_maps_to_none(self):
        payload = Response(task="text_to_vis", output="").as_dict()
        assert payload["query"] is None
        assert Response.from_dict(payload).query is None


# -- the shard wire transport ----------------------------------------------------------
# Identifier-shaped names, deliberately including non-ASCII letters: schema
# and request text must survive the UTF-8 frame encoding unchanged.
names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_äöüßéλ", min_size=1, max_size=10)
payload_text = st.text(max_size=60)


@st.composite
def database_schemas(draw) -> DatabaseSchema:
    table_names = draw(st.lists(names, min_size=1, max_size=3, unique=True))
    tables = []
    for table_name in table_names:
        column_names = draw(st.lists(names, min_size=1, max_size=4, unique=True))
        columns = [
            Column(column_name, draw(st.sampled_from(list(ColumnType))))
            for column_name in column_names
        ]
        primary_key = draw(st.one_of(st.none(), st.sampled_from(column_names)))
        tables.append(TableSchema(name=table_name, columns=columns, primary_key=primary_key))
    foreign_keys = []
    if len(tables) >= 2 and draw(st.booleans()):
        source, target = tables[0], tables[1]
        foreign_keys.append(
            ForeignKey(
                source_table=source.name,
                source_column=source.columns[0].name,
                target_table=target.name,
                target_column=target.columns[0].name,
            )
        )
    return DatabaseSchema(name=draw(names), tables=tables, foreign_keys=foreign_keys)


schema_field = st.one_of(st.none(), payload_text.filter(bool), database_schemas())
chart_field = st.one_of(st.sampled_from(QUERIES), st.sampled_from(QUERY_TEXTS))


index_pins = st.builds(
    "sha256:{}".format, st.text(alphabet="0123456789abcdef", min_size=8, max_size=64)
)

# Wire-propagated trace context (repro.obs.trace.SpanContext.to_wire shape).
# ``trace`` is compare=False on Request and ResponseChunk, so every round-trip
# assertion pins it explicitly rather than leaning on dataclass equality.
trace_contexts = st.one_of(
    st.none(),
    st.fixed_dictionaries(
        {
            "trace_id": st.text(alphabet="0123456789abcdef", min_size=32, max_size=32),
            "span_id": st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
            "sampled": st.booleans(),
        }
    ),
)


@st.composite
def wire_requests(draw) -> Request:
    task = draw(st.sampled_from(SERVABLE_TASKS))
    question = (
        draw(payload_text.filter(bool))
        if task in ("text_to_vis", "fevisqa", "corpus_qa")
        else draw(st.one_of(st.none(), payload_text))
    )
    chart = draw(chart_field) if task in ("vis_to_text", "fevisqa") else None
    schema = draw(database_schemas()) if task == "text_to_vis" else draw(schema_field)
    return Request(
        task=task,
        question=question,
        chart=chart,
        schema=schema,
        table=draw(st.one_of(st.none(), payload_text)) if task == "fevisqa" else None,
        request_id=draw(st.one_of(st.none(), payload_text)),
        deployment=draw(st.one_of(st.none(), st.sampled_from(["viz@1", "viz@2"]))),
        index=draw(st.one_of(st.none(), index_pins)) if task == "corpus_qa" else None,
        trace=draw(trace_contexts),
    )


class TestRequestWireRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(request=wire_requests())
    def test_from_wire_inverts_to_wire_through_json(self, request):
        wire = json.loads(json.dumps(request_to_wire(request)))
        rebuilt = request_from_wire(wire)
        expected_chart = request.chart.to_text() if isinstance(request.chart, DVQuery) else request.chart
        assert rebuilt.task == request.task
        assert rebuilt.question == request.question
        assert rebuilt.chart == expected_chart
        assert rebuilt.schema == request.schema
        assert rebuilt.table == request.table
        assert rebuilt.request_id == request.request_id
        assert rebuilt.deployment == request.deployment
        assert rebuilt.index == request.index
        assert rebuilt.trace == request.trace

    @settings(max_examples=100, deadline=None)
    @given(schema=database_schemas())
    def test_schema_codec_round_trips_structurally(self, schema):
        assert schema_from_wire(json.loads(json.dumps(schema_to_wire(schema)))) == schema

    def test_schema_text_and_none_pass_through(self):
        assert schema_to_wire(None) is None
        assert schema_from_wire(None) is None
        assert schema_to_wire("col : müller | straße") == "col : müller | straße"
        assert schema_from_wire("col : müller | straße") == "col : müller | straße"

    def test_non_ascii_request_survives_the_frame(self):
        request = Request(
            task="fevisqa",
            question="Wie groß ist die größte Säule — 何本ですか?",
            chart=QUERY_TEXTS[0],
            table="länder : 中国 , Österreich",
            request_id="req-λ-1",
        )
        decoder = FrameDecoder()
        (wire,) = decoder.feed(encode_frame(request_to_wire(request)))
        rebuilt = request_from_wire(wire)
        assert rebuilt == request

    def test_unknown_wire_fields_are_rejected(self):
        wire = request_to_wire(Request(task="fevisqa", question="q"))
        wire["surprise"] = 1
        with pytest.raises(TransportError, match="surprise"):
            request_from_wire(wire)

    def test_invalid_combinations_are_transport_errors(self):
        with pytest.raises(TransportError):
            request_from_wire({"task": "fevisqa"})  # no question
        with pytest.raises(TransportError):
            request_from_wire({"question": "q"})  # no task
        with pytest.raises(TransportError):
            request_from_wire("not-a-dict")
        with pytest.raises(TransportError):
            schema_from_wire({"name": "x", "tables": [{"name": "t"}]})  # no columns


frames = st.lists(
    st.dictionaries(payload_text, st.one_of(payload_text, st.integers(-5, 5), st.none()), max_size=4),
    min_size=1,
    max_size=5,
)


class TestFraming:
    @settings(max_examples=100, deadline=None)
    @given(messages=frames, data=st.data())
    def test_decoder_reassembles_any_chunking(self, messages, data):
        stream = b"".join(encode_frame(message) for message in messages)
        decoder = FrameDecoder()
        received: list[dict] = []
        position = 0
        while position < len(stream):
            step = data.draw(st.integers(1, max(1, len(stream) - position)))
            received.extend(decoder.feed(stream[position : position + step]))
            position += step
        assert received == [json.loads(json.dumps(m)) for m in messages]
        assert decoder.pending_bytes() == 0

    def test_blocking_frames_round_trip_over_a_real_pipe(self):
        read_fd, write_fd = os.pipe()
        try:
            write_frame(write_fd, {"type": "serve", "text": "größe—λ"})
            write_frame(write_fd, {"type": "stop"})
            assert read_frame(read_fd) == {"type": "serve", "text": "größe—λ"}
            assert read_frame(read_fd) == {"type": "stop"}
        finally:
            os.close(read_fd)
            os.close(write_fd)

    def test_closed_pipe_is_end_of_stream(self):
        from repro.serving.transport import EndOfStream

        read_fd, write_fd = os.pipe()
        os.close(write_fd)
        try:
            with pytest.raises(EndOfStream):
                read_frame(read_fd)
        finally:
            os.close(read_fd)

    def test_oversized_prefix_is_rejected(self):
        import struct

        decoder = FrameDecoder()
        with pytest.raises(TransportError, match="desynchronized"):
            decoder.feed(struct.pack(">I", 1 << 31))

    def test_non_json_body_is_a_transport_error(self):
        import struct

        decoder = FrameDecoder()
        body = b"\xff\xfe not json"
        with pytest.raises(TransportError):
            decoder.feed(struct.pack(">I", len(body)) + body)


# -- streamed response chunks -----------------------------------------------------------
# The streaming wire direction: every chunk shape must survive its codec and
# the frame layer, and a well-formed chunk stream must reassemble bitwise.


@st.composite
def response_chunks(draw) -> ResponseChunk:
    task = draw(st.sampled_from(SERVABLE_TASKS))
    request_id = draw(st.one_of(st.none(), payload_text))
    trace = draw(trace_contexts)
    if draw(st.booleans()):
        return ResponseChunk(
            task=task,
            seq=draw(st.integers(0, 50)),
            final=True,
            response=draw(responses()),
            request_id=request_id,
            trace=trace,
        )
    return ResponseChunk(
        task=task,
        seq=draw(st.integers(0, 50)),
        text=draw(payload_text),
        request_id=request_id,
        trace=trace,
    )


@st.composite
def chunk_streams(draw) -> tuple[list[ResponseChunk], Response]:
    """A well-formed stream: text split at arbitrary points, then the final chunk."""
    response = draw(responses())
    chunks: list[ResponseChunk] = []
    seq = 0
    if response.error is None:
        remaining = response.output
        while remaining:
            take = draw(st.integers(1, len(remaining)))
            chunks.append(
                ResponseChunk(
                    task=response.task,
                    seq=seq,
                    text=remaining[:take],
                    request_id=response.request_id,
                )
            )
            remaining = remaining[take:]
            seq += 1
        # an abandoned draft: any prefix chunks before a seq-0 restart are
        # dropped by the reset rule, so prepending garbage must not matter.
        if chunks and draw(st.booleans()):
            chunks = [
                ResponseChunk(
                    task=response.task, seq=0, text=draw(payload_text), request_id=response.request_id
                ),
                ResponseChunk(
                    task=response.task, seq=1, text=draw(payload_text), request_id=response.request_id
                ),
            ] + chunks
            seq = len(chunks)
    chunks.append(
        ResponseChunk(
            task=response.task, seq=seq, final=True, response=response, request_id=response.request_id
        )
    )
    return chunks, response


class TestChunkWireRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(chunk=response_chunks())
    def test_from_wire_inverts_to_wire_through_json(self, chunk):
        rebuilt = chunk_from_wire(json.loads(json.dumps(chunk_to_wire(chunk))))
        assert rebuilt == chunk
        assert rebuilt.trace == chunk.trace
        if chunk.response is not None:
            assert rebuilt.response.telemetry == chunk.response.telemetry

    @settings(max_examples=75, deadline=None)
    @given(stream=chunk_streams(), data=st.data())
    def test_framed_stream_reassembles_bitwise_under_any_chunking(self, stream, data):
        from repro.serving import assemble_stream

        chunks, response = stream
        wire = b"".join(encode_frame(chunk_to_wire(chunk)) for chunk in chunks)
        decoder = FrameDecoder()
        received: list[ResponseChunk] = []
        position = 0
        while position < len(wire):
            step = data.draw(st.integers(1, max(1, len(wire) - position)))
            for frame in decoder.feed(wire[position : position + step]):
                received.append(chunk_from_wire(frame))
            position += step
        assert decoder.pending_bytes() == 0
        assembled = assemble_stream(received)
        assert assembled == response
        assert assembled.output == response.output

    def test_unknown_wire_fields_are_rejected(self):
        wire = chunk_to_wire(ResponseChunk(task="corpus_qa", seq=0, text="delta"))
        wire["surprise"] = 1
        with pytest.raises(TransportError, match="surprise"):
            chunk_from_wire(wire)

    def test_untraced_wire_omits_the_trace_key(self):
        # Pre-tracing peers reject unknown fields, so untraced frames must be
        # byte-compatible with the old wire shape: no "trace" key at all.
        assert "trace" not in request_to_wire(Request(task="fevisqa", question="q"))
        assert "trace" not in chunk_to_wire(ResponseChunk(task="corpus_qa", seq=0, text="d"))

    def test_legacy_wire_without_trace_decodes_to_none(self):
        request_wire = request_to_wire(Request(task="fevisqa", question="q"))
        chunk_wire = chunk_to_wire(ResponseChunk(task="corpus_qa", seq=0, text="d"))
        assert "trace" not in request_wire and "trace" not in chunk_wire
        assert request_from_wire(request_wire).trace is None
        assert chunk_from_wire(chunk_wire).trace is None

    def test_contract_violations_are_transport_errors(self):
        with pytest.raises(TransportError):
            chunk_from_wire("not-a-dict")
        with pytest.raises(TransportError):
            chunk_from_wire({"task": "corpus_qa"})  # no seq
        with pytest.raises(TransportError):
            chunk_from_wire({"task": "corpus_qa", "seq": -1})
        with pytest.raises(TransportError):
            chunk_from_wire({"task": "corpus_qa", "seq": 0, "final": True})  # no response
