"""Shared fixtures: a small schema/database, sample queries and a database pool."""

from __future__ import annotations

import pytest

from repro.database import Column, ColumnType, Database, DatabaseSchema, ForeignKey, TableSchema
from repro.datasets.spider import build_database_pool
from repro.tokenization import DataVisTokenizer


@pytest.fixture(scope="session")
def gallery_schema() -> DatabaseSchema:
    """A two-table schema mirroring the paper's theme_gallery example."""
    return DatabaseSchema(
        name="theme_gallery",
        tables=[
            TableSchema(
                "artist",
                [
                    Column("artist_id", ColumnType.NUMBER),
                    Column("name", ColumnType.TEXT),
                    Column("country", ColumnType.TEXT),
                    Column("year_join", ColumnType.NUMBER),
                    Column("age", ColumnType.NUMBER),
                ],
                primary_key="artist_id",
            ),
            TableSchema(
                "exhibition",
                [
                    Column("exhibition_id", ColumnType.NUMBER),
                    Column("artist_id", ColumnType.NUMBER),
                    Column("date", ColumnType.TIME),
                    Column("attendance", ColumnType.NUMBER),
                ],
                primary_key="exhibition_id",
            ),
        ],
        foreign_keys=[ForeignKey("exhibition", "artist_id", "artist", "artist_id")],
    )


@pytest.fixture(scope="session")
def gallery_database(gallery_schema) -> Database:
    """The gallery schema populated with the rows from the paper's Figure 1."""
    return Database(
        gallery_schema,
        data={
            "artist": [
                {"artist_id": 1, "name": "Vijay Singh", "country": "Fiji", "year_join": 1998, "age": 45},
                {"artist_id": 2, "name": "John Daly", "country": "United States", "year_join": 1991, "age": 46},
                {"artist_id": 3, "name": "Paul Azinger", "country": "United States", "year_join": 1993, "age": 47},
                {"artist_id": 4, "name": "Davis Love III", "country": "United States", "year_join": 2003, "age": 52},
                {"artist_id": 5, "name": "Fred Couples", "country": "United States", "year_join": 2002, "age": 50},
                {"artist_id": 6, "name": "Mark McNulty", "country": "United States", "year_join": 2001, "age": 55},
                {"artist_id": 7, "name": "Nick Price", "country": "Zimbabwe", "year_join": 1994, "age": 48},
            ],
            "exhibition": [
                {"exhibition_id": 1, "artist_id": 1, "date": "2004-05-01", "attendance": 120},
                {"exhibition_id": 2, "artist_id": 2, "date": "2005-07-15", "attendance": 300},
                {"exhibition_id": 3, "artist_id": 2, "date": "2006-03-20", "attendance": 250},
                {"exhibition_id": 4, "artist_id": 7, "date": "2004-11-02", "attendance": 90},
            ],
        },
    )


@pytest.fixture(scope="session")
def pie_query_text() -> str:
    return (
        "visualize pie select artist.country , count ( artist.country ) "
        "from artist group by artist.country"
    )


@pytest.fixture(scope="session")
def small_pool():
    """A small synthetic database pool shared across dataset tests."""
    return build_database_pool(num_databases=8, seed=0)


@pytest.fixture(scope="session")
def serving_model_env() -> dict:
    """A tiny trained model plus the synthetic corpus it was built from.

    Shared by the sharded-serving suites: building the model dominates their
    runtime, so it is done once per session.  Tests that need a registry
    should register this model into their own per-module registry file —
    the fixture itself is read-only.
    """
    from repro.core.config import DataVisT5Config
    from repro.core.model import DataVisT5
    from repro.datasets import generate_nvbench

    pool = build_database_pool(num_databases=4, seed=7)
    nvbench = generate_nvbench(pool, examples_per_database=8, seed=7)
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=32, max_decode_length=12
    )
    texts = [e.question for e in nvbench.examples] + [e.query_text for e in nvbench.examples]
    model = DataVisT5.from_corpus(texts, config=config, max_vocab_size=600)
    return {"pool": pool, "nvbench": nvbench, "model": model}


@pytest.fixture(scope="session")
def tiny_tokenizer() -> DataVisTokenizer:
    corpus = [
        "<NL> show the number of artists per country <schema> | theme_gallery | artist : artist.country",
        "<VQL> visualize bar select artist.country , count ( artist.country ) from artist group by artist.country",
        "<Question> how many parts are there ? <Answer> 3",
        "<Table> | col : a | b row 1 : 1 | 2",
    ]
    return DataVisTokenizer.build_from_corpus(corpus)
