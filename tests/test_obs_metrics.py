"""Property and unit tests for :mod:`repro.obs.metrics`.

The merge/quantile contract the gateway leans on:

* merging per-shard snapshots is **exact** — bucket counts, count, min and
  max are identical to recording every observation in one histogram, in any
  merge order and grouping;
* ``quantile`` is monotone in ``p``, clamped to the observed min/max, and
  exact at the extremes;
* :meth:`MetricsRegistry.reset` zeroes instruments **in place** — every
  module caches its instruments at import time, so reset must never orphan
  a cached handle.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelConfigError
from repro.obs.metrics import BUCKET_SCHEME, Counter, Gauge, Histogram, MetricsRegistry

values = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False)
samples = st.lists(values, min_size=1, max_size=60)


def recorded(observations) -> Histogram:
    histogram = Histogram("h")
    for value in observations:
        histogram.record(value)
    return histogram


class TestHistogramMerge:
    @settings(max_examples=150, deadline=None)
    @given(left=samples, right=samples)
    def test_merge_equals_recording_everything_in_one_process(self, left, right):
        merged = recorded(left)
        merged.merge(recorded(right))
        expected = recorded(left + right)
        assert merged._counts == expected._counts
        assert merged.count == expected.count
        assert merged.quantile(0.0) == expected.quantile(0.0)
        assert merged.quantile(1.0) == expected.quantile(1.0)
        assert math.isclose(merged.sum, expected.sum, rel_tol=1e-9)

    @settings(max_examples=100, deadline=None)
    @given(left=samples, right=samples)
    def test_merge_is_commutative(self, left, right):
        ab = recorded(left)
        ab.merge(recorded(right))
        ba = recorded(right)
        ba.merge(recorded(left))
        assert ab._counts == ba._counts
        assert ab.count == ba.count
        assert ab.quantile(0.0) == ba.quantile(0.0)
        assert ab.quantile(1.0) == ba.quantile(1.0)

    @settings(max_examples=75, deadline=None)
    @given(parts=st.lists(samples, min_size=2, max_size=4))
    def test_merge_is_associative_over_shards(self, parts):
        # fold left-to-right vs. pairwise grouping: same aggregate
        folded = recorded(parts[0])
        for part in parts[1:]:
            folded.merge(recorded(part))
        flat = recorded([value for part in parts for value in part])
        assert folded._counts == flat._counts
        assert folded.count == flat.count

    @settings(max_examples=75, deadline=None)
    @given(observations=samples)
    def test_snapshot_survives_json_exactly(self, observations):
        histogram = recorded(observations)
        rebuilt = Histogram("h")
        rebuilt.merge_snapshot(json.loads(json.dumps(histogram.snapshot())))
        assert rebuilt._counts == histogram._counts
        assert rebuilt.count == histogram.count
        assert rebuilt.quantile(1.0) == histogram.quantile(1.0)

    def test_merge_refuses_foreign_bucket_schemes(self):
        histogram = Histogram("h")
        with pytest.raises(ModelConfigError, match="scheme"):
            histogram.merge_snapshot({"scheme": "linear:10", "counts": {}, "count": 0, "sum": 0.0})
        assert BUCKET_SCHEME in str(Histogram("h").snapshot()["scheme"])


class TestHistogramQuantile:
    @settings(max_examples=150, deadline=None)
    @given(observations=samples, ps=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=8))
    def test_quantile_is_monotone_in_p(self, observations, ps):
        histogram = recorded(observations)
        ps = sorted(ps)
        quantiles = [histogram.quantile(p) for p in ps]
        assert quantiles == sorted(quantiles)

    @settings(max_examples=150, deadline=None)
    @given(observations=samples, p=st.floats(0.0, 1.0))
    def test_quantile_is_clamped_to_observed_range(self, observations, p):
        histogram = recorded(observations)
        value = histogram.quantile(p)
        assert min(observations) <= value <= max(observations)

    @settings(max_examples=100, deadline=None)
    @given(observations=samples)
    def test_extremes_are_exact(self, observations):
        histogram = recorded(observations)
        assert histogram.quantile(0.0) == min(observations)
        assert histogram.quantile(1.0) == max(observations)

    @settings(max_examples=100, deadline=None)
    @given(observations=st.lists(st.floats(2e-3, 1e4, allow_nan=False), min_size=1, max_size=60))
    def test_median_is_within_one_bucket_of_truth(self, observations):
        # The bound holds inside the bucketed range [1e-3, 1e5]; values below
        # the first boundary clamp into the catch-all bucket by design.
        histogram = recorded(observations)
        exact = sorted(observations)[(len(observations) - 1) // 2]
        # one log2x8 bucket is a 2**0.125 ratio; allow one bucket either side
        ratio = 2.0 ** 0.125
        assert exact / ratio - 1e-12 <= histogram.quantile(0.5) <= exact * ratio + 1e-12

    def test_empty_histogram_is_all_zeros(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean() == 0.0
        assert histogram.summary() == {"p50": 0.0, "p90": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}

    def test_summary_has_the_benchmark_shape(self):
        histogram = recorded([1.0, 2.0, 3.0, 10.0])
        summary = histogram.summary()
        assert set(summary) == {"p50", "p90", "p99", "mean", "max"}
        assert summary["max"] == 10.0
        assert summary["mean"] == 4.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")
        assert registry.gauge("c") is registry.gauge("c")

    def test_kind_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ModelConfigError, match="Counter"):
            registry.histogram("x")

    def test_reset_preserves_instrument_identity(self):
        # Regression: instruments are cached in module globals at import, so
        # reset() must zero them in place — dropping the objects would orphan
        # every cached handle and silently lose all later recordings.
        registry = MetricsRegistry()
        counter = registry.counter("tokens")
        histogram = registry.histogram("lat")
        gauge = registry.gauge("pages")
        counter.inc(5)
        histogram.record(1.0)
        gauge.set(3.0)
        registry.reset()
        assert counter.value == 0 and histogram.count == 0 and gauge.value == 0.0
        counter.inc()
        histogram.record(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["tokens"] == 1
        assert snapshot["histograms"]["lat"]["count"] == 1
        assert registry.counter("tokens") is counter
        assert registry.histogram("lat") is histogram
        assert registry.gauge("pages") is gauge

    def test_registry_merge_folds_counters_and_histograms_exactly(self):
        source = MetricsRegistry()
        source.counter("n").inc(7)
        source.gauge("g").set(2.5)
        source.histogram("h").record(4.0)
        target = MetricsRegistry()
        target.counter("n").inc(3)
        target.histogram("h").record(8.0)
        target.merge(json.loads(json.dumps(source.snapshot())))
        snapshot = target.snapshot()
        assert snapshot["counters"]["n"] == 10
        assert snapshot["gauges"]["g"] == 2.5
        assert snapshot["histograms"]["h"]["count"] == 2
        assert snapshot["histograms"]["h"]["max"] == 8.0

    def test_counter_and_gauge_basics(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge("g")
        gauge.set(1)
        gauge.set(0.25)
        assert gauge.value == 0.25
