"""Tracing: span lifecycle, the ring store, propagation, and the end-to-end tree.

The acceptance bar for the observability layer: a single streamed
``corpus_qa`` request through a real forked-shard :class:`ShardedServer`
must reconstruct, in the gateway's trace store, one tree containing the
gateway, shard-dispatch, pipeline-stage and decode-step spans — one
``trace_id`` throughout, every parent link resolving — and every streamed
chunk must echo the trace context.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets.corpus import CorpusDocument, CorpusIndex
from repro.deploy.registry import ModelRegistry
from repro.obs.export import render_trace, span_tree
from repro.obs.names import (
    SPAN_DECODE_STEP,
    SPAN_GATEWAY_DISPATCH,
    SPAN_GATEWAY_REQUEST,
    SPAN_PIPELINE_GENERATE,
    SPAN_PIPELINE_MERGE,
    SPAN_PIPELINE_RETRIEVE,
    SPAN_SHARD_SERVE,
)
from repro.obs.trace import Span, SpanContext, TraceStore, current_context
from repro.serving.protocol import Request, assemble_stream
from repro.serving.sharded import ShardConfig, ShardedServer


@pytest.fixture()
def tracing():
    """Tracing on for the test, global obs state restored afterwards."""
    obs.TRACES.clear()
    obs.configure(tracing=True, sample_rate=1.0)
    try:
        yield obs.TRACES
    finally:
        obs.configure(tracing=False, sample_rate=1.0)
        obs.TRACES.clear()


class TestSpanContext:
    def test_wire_round_trip(self):
        context = SpanContext(trace_id="a" * 32, span_id="b" * 16, sampled=False)
        assert SpanContext.from_wire(context.to_wire()) == context

    def test_none_stays_none(self):
        assert SpanContext.from_wire(None) is None

    def test_span_dict_round_trip(self):
        span = Span(
            name="x", trace_id="t" * 32, span_id="s" * 16, parent_id="p" * 16,
            start=1.5, duration_s=0.25, status="error", attrs={"k": 1},
        )
        assert Span.from_dict(span.as_dict()) == span


class TestTraceStore:
    def test_disabled_store_starts_no_roots(self):
        store = TraceStore(enabled=False)
        assert store.root("r") is None

    def test_sample_rate_zero_drops_every_root(self):
        store = TraceStore(enabled=True, sample_rate=0.0)
        assert all(store.root("r") is None for _ in range(20))

    def test_root_ids_are_otel_shaped(self):
        store = TraceStore(enabled=True)
        span = store.root("r", attrs={"task": "t"})
        assert len(span.trace_id) == 32 and len(span.span_id) == 16
        assert span.parent_id is None and span.attrs == {"task": "t"}

    def test_children_inherit_the_trace_even_when_disabled_locally(self):
        # a forked shard must keep recording for a gateway-started trace
        store = TraceStore(enabled=False)
        parent = SpanContext(trace_id="t" * 32, span_id="p" * 16)
        child = store.begin("c", parent)
        assert child.trace_id == parent.trace_id and child.parent_id == parent.span_id

    def test_unsampled_and_absent_parents_yield_none(self):
        store = TraceStore(enabled=True)
        assert store.begin("c", None) is None
        assert store.begin("c", SpanContext("t" * 32, "p" * 16, sampled=False)) is None
        assert store.begin("c", SpanContext("", "")) is None
        assert store.record("c", None, 0.1) is None

    def test_finish_stamps_duration_and_commits(self):
        store = TraceStore(enabled=True)
        span = store.root("r")
        assert len(store) == 0  # unfinished spans are not in the ring
        store.finish(span, status="bogus")
        assert len(store) == 1
        assert span.duration_s is not None and span.duration_s >= 0.0
        assert span.status == "error"  # unknown statuses coerce to error
        store.finish(None)  # no-op by contract

    def test_record_is_a_one_call_finished_child(self):
        store = TraceStore(enabled=True)
        root = store.root("r")
        child = store.record("c", root.context, 0.125, status="ok", attrs={"step": 3})
        assert child.duration_s == 0.125 and child.parent_id == root.span_id
        assert store.spans(root.trace_id) == [child]

    def test_ring_capacity_keeps_the_newest_spans(self):
        store = TraceStore(capacity=3, enabled=True)
        for index in range(5):
            store.finish(store.root("r", attrs={"i": index}))
        assert [span.attrs["i"] for span in store.spans()] == [2, 3, 4]
        store.set_capacity(2)
        assert [span.attrs["i"] for span in store.spans()] == [3, 4]

    def test_take_removes_exactly_one_trace(self):
        store = TraceStore(enabled=True)
        first, second = store.root("a"), store.root("b")
        store.finish(first)
        store.finish(second)
        taken = store.take(first.trace_id)
        assert [span.span_id for span in taken] == [first.span_id]
        assert [span.span_id for span in store.spans()] == [second.span_id]

    def test_ingest_adopts_foreign_span_dicts(self):
        store = TraceStore(enabled=False)
        store.ingest([Span(name="x", trace_id="t" * 32, span_id="s" * 16).as_dict()])
        assert len(store) == 1 and store.spans()[0].name == "x"

    def test_span_contextmanager_nests_and_restores(self):
        store = TraceStore(enabled=True)
        assert current_context() is None
        with store.span("outer") as outer:
            assert current_context().span_id == outer.span_id
            with store.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert current_context() is None
        assert {span.name for span in store.spans()} == {"outer", "inner"}

    def test_span_contextmanager_marks_errors(self):
        store = TraceStore(enabled=True)
        with pytest.raises(ValueError):
            with store.span("failing"):
                raise ValueError("boom")
        assert store.spans()[0].status == "error"


def _register_corpus_deployment(scratch: Path):
    documents = [
        CorpusDocument(
            doc_id=f"doc-{index}",
            title=f"metric{index} by region",
            chart=f"bar chart showing metric{index} grouped by region",
            schema=None,
            table=f"region | metric{index}",
        )
        for index in range(4)
    ]
    index = CorpusIndex(documents)
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=16, max_decode_length=8, seed=0
    )
    model = DataVisT5.from_corpus([document.text() for document in documents], config=config, max_vocab_size=400)
    registry_path = scratch / "registry.json"
    manifest = ModelRegistry(registry_path).register_checkpoint(
        "obs-trace", model, scratch / "ckpt", corpus_index=index
    )
    return registry_path, manifest.id


@pytest.mark.slow
class TestEndToEndTrace:
    def test_sharded_streamed_corpus_qa_reconstructs_one_full_tree(self, tracing, tmp_path):
        registry_path, ref = _register_corpus_deployment(tmp_path)
        config = ShardConfig(num_shards=1, heartbeat_timeout_ms=10000.0)
        with ShardedServer(registry_path, ref, config) as server:
            request = Request(task="corpus_qa", question="what does the bar chart of metric1 show")
            chunks = list(server.stream(request))
            response = assemble_stream(chunks)
        assert response.error is None, (response.error, response.detail)

        # every streamed chunk echoes the trace context
        assert chunks and all(chunk.trace is not None for chunk in chunks)
        trace_ids = {chunk.trace["trace_id"] for chunk in chunks}
        assert len(trace_ids) == 1
        trace_id = trace_ids.pop()

        spans = obs.TRACES.spans(trace_id)
        names = {span.name for span in spans}
        # the acceptance set: gateway, shard dispatch, pipeline stages, decode steps
        assert {
            SPAN_GATEWAY_REQUEST,
            SPAN_GATEWAY_DISPATCH,
            SPAN_SHARD_SERVE,
            SPAN_PIPELINE_RETRIEVE,
            SPAN_PIPELINE_GENERATE,
            SPAN_PIPELINE_MERGE,
            SPAN_DECODE_STEP,
        } <= names

        # one consistent tree: a single root, every parent link resolves
        assert all(span.trace_id == trace_id for span in spans)
        ids = {span.span_id for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == 1 and roots[0].name == SPAN_GATEWAY_REQUEST
        assert all(span.parent_id in ids for span in spans if span.parent_id is not None)
        assert span_tree(spans, trace_id) is not None
        assert render_trace(spans, trace_id).startswith(SPAN_GATEWAY_REQUEST)

        # every finished span is timed and terminal
        assert all(span.duration_s is not None and span.status == "ok" for span in spans)

    def test_untraced_requests_stay_untraced(self, tmp_path):
        # tracing is off by default: no spans recorded, no trace on the wire
        obs.TRACES.clear()
        registry_path, ref = _register_corpus_deployment(tmp_path)
        config = ShardConfig(num_shards=1, heartbeat_timeout_ms=10000.0)
        with ShardedServer(registry_path, ref, config) as server:
            request = Request(task="corpus_qa", question="what does the bar chart of metric2 show")
            chunks = list(server.stream(request))
        assert assemble_stream(chunks).error is None
        assert all(chunk.trace is None for chunk in chunks)
        assert len(obs.TRACES) == 0
