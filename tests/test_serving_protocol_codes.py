"""Error-code reconciliation: one list, everywhere.

``repro.serving.protocol.ERROR_CODE_MEANINGS`` is the single source of truth
for the machine-readable error codes a serving ``Response`` can carry.  This
suite pins every derived surface to it so the code list can never drift
again:

* the ``ERROR_*`` constants and ``ERROR_CODES`` tuple in ``protocol.py``;
* the codes ``server.py`` actually emits and counts (its per-code counters
  and the ``rejected``/``failed`` groups of ``Server.stats()``);
* the documentation table in ``docs/serving.md``;
* ``error_response``'s refusal to mint unknown codes.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.errors import ModelConfigError
from repro.serving import protocol, server
from repro.serving.protocol import (
    ERROR_CODE_MEANINGS,
    ERROR_CODES,
    MODEL_TASKS,
    SERVABLE_TASKS,
    Request,
    error_response,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_error_codes_derive_from_meanings():
    assert ERROR_CODES == tuple(ERROR_CODE_MEANINGS)
    assert all(meaning.strip() for meaning in ERROR_CODE_MEANINGS.values())


def test_constants_cover_the_meanings_exactly():
    constants = {
        value
        for name, value in vars(protocol).items()
        if name.startswith("ERROR_") and isinstance(value, str)
    }
    assert constants == set(ERROR_CODE_MEANINGS)


def test_server_counts_every_code():
    pipeline_stub = type("PipelineStub", (), {})()
    srv = server.Server(pipeline_stub)  # type: ignore[arg-type]
    for code in ERROR_CODES:
        assert code in srv._counts, f"Server does not count {code!r}"


def test_server_stats_groups_cover_every_code():
    pipeline_stub = type("PipelineStub", (), {"stats": lambda self: {}})()
    srv = server.Server(pipeline_stub)  # type: ignore[arg-type]
    stats = srv.stats()
    reported = set(stats["requests"]["rejected"]) | set(stats["requests"]["failed"])
    assert reported == set(ERROR_CODES)


def test_server_source_emits_only_known_codes():
    source = (REPO_ROOT / "src" / "repro" / "serving" / "server.py").read_text(encoding="utf-8")
    referenced = set(re.findall(r"ERROR_[A-Z_]+", source))
    defined = {name for name in vars(protocol) if name.startswith("ERROR_")}
    unknown = referenced - defined
    assert not unknown, f"server.py references undefined error constants: {sorted(unknown)}"
    # every code the protocol defines is actually used by the server
    emitted = {getattr(protocol, name) for name in referenced if isinstance(getattr(protocol, name, None), str)}
    assert emitted == set(ERROR_CODES)


def test_sharded_source_emits_only_known_codes():
    # The process-sharded gateway mints its own admission / failure codes;
    # pin them to the protocol list the same way server.py is pinned.  The
    # gateway seeds its counters from ERROR_CODES directly, so every code is
    # counted even when only a subset is minted gateway-side.
    source = (REPO_ROOT / "src" / "repro" / "serving" / "sharded.py").read_text(encoding="utf-8")
    referenced = set(re.findall(r"ERROR_[A-Z_]+", source))
    defined = {name for name in vars(protocol) if name.startswith("ERROR_")}
    unknown = referenced - defined
    assert not unknown, f"sharded.py references undefined error constants: {sorted(unknown)}"
    emitted = {getattr(protocol, name) for name in referenced if isinstance(getattr(protocol, name, None), str)}
    assert emitted <= set(ERROR_CODES)
    # the codes the sharded tier's failure semantics are specified to emit
    assert {"shard_failed", "queue_full", "invalid_request", "server_stopped"} <= emitted


def test_servable_tasks_extend_the_model_tasks():
    # single source of truth: corpus_qa is servable but not model-backed, and
    # every layer (manifest defaults, registry, request validation) derives
    # its task list from these two tuples rather than respelling them.
    assert MODEL_TASKS == ("text_to_vis", "vis_to_text", "fevisqa")
    assert SERVABLE_TASKS == MODEL_TASKS + ("corpus_qa",)


def test_unknown_task_error_lists_every_servable_task():
    with pytest.raises(ModelConfigError) as excinfo:
        Request(task="summarize")
    message = str(excinfo.value)
    for task in SERVABLE_TASKS:
        assert task in message, f"the unknown-task error does not advertise {task!r}"


def test_docs_table_lists_every_code():
    docs = (REPO_ROOT / "docs" / "serving.md").read_text(encoding="utf-8")
    for code in ERROR_CODES:
        assert f"`{code}`" in docs, f"docs/serving.md does not document error code {code!r}"


def test_unconfigured_task_is_invalid_request_not_backend_error():
    # The same misconfiguration must carry the same code on both serving
    # paths: the async server fail-fasts it as invalid_request, so the
    # synchronous strict=False path must too.
    from repro.serving import Pipeline

    pipeline = Pipeline()  # no backends configured at all
    response = pipeline.serve([Request(task="fevisqa", question="q")], strict=False)[0]
    assert response.error == "invalid_request"
    assert "no backend configured" in (response.detail or "")


def test_as_dict_carries_telemetry():
    response = protocol.Response(task="fevisqa", output="3", telemetry={"queue_ms": 1.0})
    assert response.as_dict()["telemetry"] == {"queue_ms": 1.0}


def test_error_response_rejects_unknown_codes():
    request = Request(task="fevisqa", question="q")
    for code in ERROR_CODES:
        assert error_response(request, code, "detail").error == code
    with pytest.raises(ModelConfigError):
        error_response(request, "made_up_code", "detail")
