"""Tests for repro.utils.rng."""

import numpy as np

from repro.utils.rng import derive_seed, seeded_rng


class TestSeededRng:
    def test_same_seed_same_stream(self):
        assert seeded_rng(7).integers(0, 1000) == seeded_rng(7).integers(0, 1000)

    def test_none_is_deterministic(self):
        assert seeded_rng(None).integers(0, 1000) == seeded_rng(None).integers(0, 1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(3)
        assert seeded_rng(generator) is generator


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_in_valid_range(self):
        seed = derive_seed(123, "x", 4)
        assert 0 <= seed < 2**63 - 1
