"""Tests for repro.utils.text."""

import pytest
from hypothesis import given, strategies as st

from repro.utils.text import (
    jaccard_similarity,
    levenshtein_distance,
    ngrams,
    normalize_whitespace,
    tokenize_words,
)


class TestNormalizeWhitespace:
    def test_collapses_runs(self):
        assert normalize_whitespace("a   b\t\nc") == "a b c"

    def test_strips_ends(self):
        assert normalize_whitespace("  hello world  ") == "hello world"

    def test_empty(self):
        assert normalize_whitespace("   ") == ""


class TestTokenizeWords:
    def test_keeps_qualified_identifiers(self):
        assert "artist.country" in tokenize_words("count artist.country now")

    def test_lowercases_by_default(self):
        assert tokenize_words("Show ME") == ["show", "me"]

    def test_respects_lowercase_flag(self):
        assert tokenize_words("Show", lowercase=False) == ["Show"]

    def test_punctuation_is_separate(self):
        assert tokenize_words("a , b") == ["a", ",", "b"]


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_too_short_returns_empty(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    @given(st.lists(st.text(min_size=1, max_size=3), max_size=20), st.integers(min_value=1, max_value=5))
    def test_count_property(self, tokens, n):
        grams = ngrams(tokens, n)
        assert len(grams) == max(0, len(tokens) - n + 1)


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity(["a"], ["b"]) == 0.0

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    @given(st.lists(st.integers(0, 5), max_size=10), st.lists(st.integers(0, 5), max_size=10))
    def test_bounded(self, a, b):
        value = jaccard_similarity(map(str, a), map(str, b))
        assert 0.0 <= value <= 1.0


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein_distance("abc", "abc") == 0

    def test_known_distance(self):
        assert levenshtein_distance("kitten", "sitting") == 3

    def test_empty_sequence(self):
        assert levenshtein_distance("", "abc") == 3

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_upper_bound(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))
