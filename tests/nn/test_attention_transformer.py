"""Tests for attention, relative position bias and the T5 model."""

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.nn.attention import MultiHeadAttention, RelativePositionBias
from repro.nn.tensor import Tensor
from repro.nn.transformer import T5Model, TransformerConfig


def tiny_config(**overrides) -> TransformerConfig:
    params = dict(
        vocab_size=40,
        d_model=16,
        num_heads=2,
        d_ff=32,
        num_encoder_layers=1,
        num_decoder_layers=1,
        max_decode_length=8,
    )
    params.update(overrides)
    return TransformerConfig(**params)


class TestRelativePositionBias:
    def test_shape(self):
        bias = RelativePositionBias(num_heads=2, num_buckets=8, max_distance=16)
        out = bias(5, 7)
        assert out.shape == (1, 2, 5, 7)

    def test_buckets_depend_only_on_distance(self):
        bias = RelativePositionBias(num_heads=1, num_buckets=8, max_distance=16)
        out = bias(6, 6).numpy()[0, 0]
        assert out[0, 1] == pytest.approx(out[3, 4])
        assert out[1, 0] == pytest.approx(out[4, 3])

    def test_invalid_buckets(self):
        with pytest.raises(ModelConfigError):
            RelativePositionBias(num_heads=1, num_buckets=1)


class TestMultiHeadAttention:
    def test_output_shape(self):
        attention = MultiHeadAttention(d_model=16, num_heads=4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 16)))
        out = attention(x, x, x)
        assert out.shape == (2, 5, 16)

    def test_masking_blocks_attention(self):
        attention = MultiHeadAttention(d_model=8, num_heads=2)
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        mask = np.array([[[True, True, False, False]]* 4])  # keys 2,3 masked for all queries
        _, weights = attention(x, x, x, mask=mask.reshape(1, 4, 4), return_weights=True)
        weights = weights.numpy()
        assert np.allclose(weights[..., 2:], 0.0, atol=1e-6)

    def test_weights_sum_to_one(self):
        attention = MultiHeadAttention(d_model=8, num_heads=2)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 3, 8)))
        _, weights = attention(x, x, x, return_weights=True)
        np.testing.assert_allclose(weights.numpy().sum(axis=-1), np.ones((2, 2, 3)), atol=1e-9)

    def test_d_model_head_divisibility(self):
        with pytest.raises(ModelConfigError):
            MultiHeadAttention(d_model=10, num_heads=3)


class TestT5Model:
    def test_forward_loss_and_logits(self):
        model = T5Model(tiny_config())
        x = np.random.default_rng(0).integers(4, 40, size=(2, 6))
        y = np.random.default_rng(1).integers(4, 40, size=(2, 5))
        out = model(x, labels=y)
        assert out["logits"].shape == (2, 5, 40)
        assert np.isfinite(out["loss"].item())

    def test_shift_right(self):
        model = T5Model(tiny_config())
        labels = np.array([[5, 6, 1], [7, 1, 0]])
        shifted = model.shift_right(labels)
        assert shifted[0, 0] == model.config.bos_id
        assert shifted[0, 1] == 5
        assert shifted[1, 2] == 1

    def test_loss_decreases_with_training(self):
        from repro.nn.optim import Adam

        model = T5Model(tiny_config(seed=1))
        rng = np.random.default_rng(0)
        x = rng.integers(4, 40, size=(4, 6))
        y = rng.integers(4, 40, size=(4, 5))
        optimizer = Adam(model.parameters(), learning_rate=1e-2)
        first = None
        last = None
        for _ in range(12):
            optimizer.zero_grad()
            out = model(x, labels=y)
            out["loss"].backward()
            optimizer.step()
            last = out["loss"].item()
            if first is None:
                first = last
        assert last < first

    def test_greedy_generation_shape_and_range(self):
        model = T5Model(tiny_config())
        x = np.random.default_rng(0).integers(4, 40, size=(3, 6))
        generated = model.generate(x, max_length=5)
        assert generated.shape[0] == 3
        assert generated.shape[1] <= 5
        assert generated.min() >= 0 and generated.max() < 40

    def test_beam_generation(self):
        # Beam search follows the same output contract as greedy decoding:
        # width is the longest generated row, not a fixed max_length pad-out.
        model = T5Model(tiny_config())
        x = np.random.default_rng(0).integers(4, 40, size=(1, 6))
        generated = model.generate(x, max_length=5, num_beams=3)
        assert generated.shape[0] == 1
        assert 1 <= generated.shape[1] <= 5
        assert generated.min() >= 0 and generated.max() < 40

    def test_cached_flag_does_not_change_outputs(self):
        model = T5Model(tiny_config())
        x = np.random.default_rng(1).integers(4, 40, size=(2, 6))
        for num_beams in (1, 2):
            fast = model.generate(x, max_length=5, num_beams=num_beams, use_cache=True)
            reference = model.generate(x, max_length=5, num_beams=num_beams, use_cache=False)
            assert np.array_equal(fast, reference)

    def test_requires_labels_or_decoder_inputs(self):
        model = T5Model(tiny_config())
        with pytest.raises(ModelConfigError):
            model(np.array([[4, 5]]))

    def test_config_validation(self):
        with pytest.raises(ModelConfigError):
            TransformerConfig(vocab_size=10, d_model=15, num_heads=4).validate()
