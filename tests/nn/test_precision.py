"""Precision-policy suite: float32 autocast and int8 weight quantization.

The contract under test (documented in ``docs/numerics.md``):

* ``autocast("float32")`` runs a forward/decode in float32 end-to-end and
  disables autograd recording for the scope; master parameters stay float64.
* fp32 greedy and beam decode agree with the fp64 reference at a high token
  rate on seeded models (the documented tolerance is >= 0.99 token
  agreement; hypothesis drives it across shapes and seeds).
* int8 quantization is symmetric per-row, bounded by half a quantization
  step, deterministic, and round-trips through ``int8_state_dict`` /
  ``load_state_dict`` bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelConfigError
from repro.nn.decode_cache import KVState
from repro.nn.layers import Embedding, Linear, cast_cached, symmetric_int8
from repro.nn.tensor import Tensor, autocast, compute_dtype, grad_enabled, resolve_dtype
from repro.nn.transformer import T5Model, TransformerConfig

PAD, EOS, BOS = 0, 1, 3

#: The documented fp32-vs-fp64 decode tolerance (docs/numerics.md): at least
#: this fraction of token positions must agree on seeded tiny models.
AGREEMENT_TOLERANCE = 0.99

_MODEL_CACHE: dict[tuple, T5Model] = {}


def build_model(vocab_size=32, d_model=16, num_heads=2, d_ff=32, num_layers=1, seed=0, eos_id=EOS) -> T5Model:
    """A tiny eval-mode model; memoized so hypothesis examples share weights."""
    key = (vocab_size, d_model, num_heads, d_ff, num_layers, seed, eos_id)
    if key not in _MODEL_CACHE:
        config = TransformerConfig(
            vocab_size=vocab_size,
            d_model=d_model,
            num_heads=num_heads,
            d_ff=d_ff,
            num_encoder_layers=num_layers,
            num_decoder_layers=num_layers,
            eos_id=eos_id,
            seed=seed,
        )
        _MODEL_CACHE[key] = T5Model(config).eval()
    return _MODEL_CACHE[key]


class TestAutocast:
    def test_default_dtype_is_float64(self):
        assert compute_dtype() == np.float64
        assert Tensor([1.0]).data.dtype == np.float64

    def test_autocast_sets_dtype_and_disables_grad(self):
        with autocast("float32"):
            assert compute_dtype() == np.float32
            assert not grad_enabled()
            assert Tensor([1.0]).data.dtype == np.float32
        assert compute_dtype() == np.float64
        assert grad_enabled()

    def test_autocast_float64_keeps_grad(self):
        with autocast("float64"):
            assert grad_enabled()
            assert compute_dtype() == np.float64

    def test_autocast_nesting_restores(self):
        with autocast("float32"):
            with autocast("float64"):
                assert compute_dtype() == np.float64
            assert compute_dtype() == np.float32

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            resolve_dtype("float16")
        with pytest.raises(ValueError):
            with autocast("int8"):
                pass  # pragma: no cover - must raise before entering

    def test_parameters_stay_float64_masters(self):
        with autocast("float32"):
            layer = Linear(4, 3, seed=0)
        assert layer.weight.data.dtype == np.float64
        assert layer.weight.requires_grad

    def test_parameters_created_under_autocast_keep_full_precision(self):
        # Masters must not round through the compute dtype on their way in:
        # a module built inside an autocast scope is bitwise identical to
        # the same seeded module built outside it.
        reference = Linear(4, 3, seed=11)
        with autocast("float32"):
            inside = Linear(4, 3, seed=11)
        np.testing.assert_array_equal(inside.weight.data, reference.weight.data)

    def test_mixed_master_op_lands_in_compute_dtype(self):
        layer = Linear(4, 3, seed=0)
        with autocast("float32"):
            out = layer(Tensor(np.ones((2, 4))))
        assert out.data.dtype == np.float32

    def test_no_graph_recorded_under_autocast(self):
        layer = Linear(4, 3, seed=0)
        with autocast("float32"):
            out = (layer(Tensor(np.ones((2, 4)))) ** 2).sum()
        assert not out.requires_grad


class TestCastCached:
    def test_reuses_until_identity_changes(self):
        layer = Linear(4, 3, seed=0)
        first = cast_cached(layer, "weight", layer.weight.data, np.float32)
        assert cast_cached(layer, "weight", layer.weight.data, np.float32) is first
        layer.weight.data = layer.weight.data.copy()  # reassignment -> new identity
        assert cast_cached(layer, "weight", layer.weight.data, np.float32) is not first

    def test_mode_transition_invalidates(self):
        layer = Linear(4, 3, seed=0).eval()
        first = cast_cached(layer, "weight", layer.weight.data, np.float32)
        layer.weight.data[0, 0] += 1.0  # in-place, same identity
        layer.train()
        layer.eval()
        refreshed = cast_cached(layer, "weight", layer.weight.data, np.float32)
        assert refreshed is not first
        assert refreshed[0, 0] == np.float32(layer.weight.data[0, 0])

    def test_same_dtype_passthrough(self):
        layer = Linear(4, 3, seed=0)
        assert cast_cached(layer, "weight", layer.weight.data, np.float64) is layer.weight.data


class TestFloat32Forward:
    def test_logits_close_to_float64(self):
        model = build_model(d_model=32, d_ff=64)
        rng = np.random.default_rng(0)
        ids = rng.integers(4, 32, size=(3, 7))
        labels = rng.integers(4, 32, size=(3, 5))
        reference = model(ids, labels=labels)["logits"].numpy()
        with autocast("float32"):
            reduced = model(ids, labels=labels)["logits"].numpy()
        assert reduced.dtype == np.float32
        np.testing.assert_allclose(reduced, reference, rtol=2e-4, atol=2e-4)

    def test_kv_cache_rejects_mixed_dtypes(self):
        state = KVState()
        state.append(np.zeros((1, 2, 1, 4), dtype=np.float64), np.zeros((1, 2, 1, 4), dtype=np.float64))
        with pytest.raises(ModelConfigError):
            state.append(np.zeros((1, 2, 1, 4), dtype=np.float32), np.zeros((1, 2, 1, 4), dtype=np.float32))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=4),
        batch=st.integers(min_value=1, max_value=3),
        width=st.integers(min_value=2, max_value=6),
        max_length=st.integers(min_value=2, max_value=10),
        data=st.data(),
    )
    def test_greedy_fp32_agrees_with_fp64(self, seed, batch, width, max_length, data):
        model = build_model(seed=seed)
        rows = [
            data.draw(st.lists(st.integers(4, 31), min_size=1, max_size=width), label=f"row{i}")
            for i in range(batch)
        ]
        ids = np.full((batch, width), PAD, dtype=np.int64)
        for i, row in enumerate(rows):
            ids[i, : len(row)] = row
        reference = model.generate(ids, max_length=max_length, dtype="float64")
        reduced = model.generate(ids, max_length=max_length, dtype="float32")
        agreement = _token_agreement(reference, reduced, pad_id=PAD)
        assert agreement >= AGREEMENT_TOLERANCE

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        num_beams=st.integers(min_value=2, max_value=3),
        max_length=st.integers(min_value=2, max_value=8),
    )
    def test_beam_fp32_agrees_with_fp64(self, seed, num_beams, max_length):
        model = build_model(seed=seed)
        rng = np.random.default_rng(seed)
        ids = rng.integers(4, 32, size=(2, 5))
        reference = model.generate(ids, max_length=max_length, num_beams=num_beams, dtype="float64")
        reduced = model.generate(ids, max_length=max_length, num_beams=num_beams, dtype="float32")
        assert _token_agreement(reference, reduced, pad_id=PAD) >= AGREEMENT_TOLERANCE


def _token_agreement(reference: np.ndarray, candidate: np.ndarray, pad_id: int) -> float:
    """Token agreement over the union-padded width of two decodes."""
    width = max(reference.shape[1], candidate.shape[1])

    def pad(array: np.ndarray) -> np.ndarray:
        out = np.full((array.shape[0], width), pad_id, dtype=np.int64)
        out[:, : array.shape[1]] = array
        return out

    return float((pad(reference) == pad(candidate)).mean())


class TestInt8Quantization:
    def test_symmetric_int8_error_bound(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 0.3, size=(16, 8))
        codes, scales = symmetric_int8(values, axis=0)
        assert codes.dtype == np.int8
        assert np.abs(codes).max() <= 127
        assert np.all(np.abs(values - codes * scales) <= scales / 2 + 1e-12)

    def test_symmetric_int8_zero_rows(self):
        codes, scales = symmetric_int8(np.zeros((4, 3)), axis=1)
        assert np.all(codes == 0)
        assert np.all(scales == 1.0)

    def test_linear_quantize_freezes_and_rederives_master(self):
        layer = Linear(8, 4, seed=1)
        original = layer.weight.data.copy()
        layer.quantize_int8()
        assert layer.quantized
        assert not layer.weight.requires_grad
        np.testing.assert_array_equal(layer.weight.data, layer.weight_q.astype(np.float64) * layer.weight_scale)
        assert np.abs(layer.weight.data - original).max() <= layer.weight_scale.max() / 2 + 1e-12
        # double-quantize is a no-op: codes, scales, and master are untouched
        codes, scales, master = layer.weight_q.copy(), layer.weight_scale.copy(), layer.weight.data.copy()
        layer.quantize_int8()
        np.testing.assert_array_equal(layer.weight_q, codes)
        np.testing.assert_array_equal(layer.weight_scale, scales)
        np.testing.assert_array_equal(layer.weight.data, master)

    def test_embedding_per_row_scales(self):
        table = Embedding(10, 6, seed=2)
        table.quantize_int8()
        assert table.weight_scale.shape == (10, 1)
        assert table.quantized

    def test_model_quantize_walks_shared_modules_once(self):
        model = build_model(seed=7)
        fresh = T5Model(model.config).eval()
        fresh.quantize_int8()
        assert fresh.quantized
        # the shared embedding is one instance reachable by three names
        assert fresh.shared_embedding is fresh.encoder.embedding is fresh.decoder.embedding
        assert fresh.shared_embedding.quantized

    def test_int8_state_dict_round_trips_bitwise(self):
        config = TransformerConfig(vocab_size=32, d_model=16, num_heads=2, d_ff=32, seed=5)
        model = T5Model(config).eval()
        model.quantize_int8()
        state = model.int8_state_dict()
        assert any(key.endswith(".int8") for key in state)
        clone = T5Model(config).eval()
        clone.load_state_dict(state)
        for (name, parameter), (_, other) in zip(model.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(parameter.data, other.data, err_msg=name)
        rng = np.random.default_rng(0)
        ids = rng.integers(4, 32, size=(2, 6))
        np.testing.assert_array_equal(model.generate(ids, max_length=8), clone.generate(ids, max_length=8))

    def test_plain_state_load_clears_quantization(self):
        config = TransformerConfig(vocab_size=32, d_model=16, num_heads=2, d_ff=32, seed=6)
        model = T5Model(config).eval()
        model.quantize_int8()
        model.load_state_dict(T5Model(config).state_dict())
        assert not model.quantized
        for _, parameter in model.named_parameters():
            assert parameter.requires_grad

    def test_int8_missing_scales_rejected(self):
        config = TransformerConfig(vocab_size=32, d_model=16, num_heads=2, d_ff=32, seed=6)
        model = T5Model(config).eval()
        model.quantize_int8()
        state = model.int8_state_dict()
        state.pop("shared_embedding.weight.int8_scale")
        with pytest.raises(ModelConfigError):
            T5Model(config).load_state_dict(state)

    def test_rejected_state_dict_leaves_model_untouched(self):
        # Validation must run before any int8 install: a bad checkpoint may
        # not leave the model half-overwritten or half-quantized.
        config = TransformerConfig(vocab_size=32, d_model=16, num_heads=2, d_ff=32, seed=6)
        donor = T5Model(config).eval()
        donor.quantize_int8()
        state = donor.int8_state_dict()
        state["not_a_real.weight"] = np.zeros(3)
        target = T5Model(config).eval()
        before = {name: parameter.data.copy() for name, parameter in target.named_parameters()}
        with pytest.raises(ModelConfigError, match="state dict mismatch"):
            target.load_state_dict(state)
        assert not target.quantized
        for name, parameter in target.named_parameters():
            np.testing.assert_array_equal(parameter.data, before[name], err_msg=name)
            assert parameter.requires_grad
