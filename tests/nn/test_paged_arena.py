"""Paged-KV arena and continuous-decode equivalence suite.

Two layers of guarantees.  Mechanically: pages allocate, free and recycle
correctly, gathered views reproduce exactly what was appended, released
pages reused by another sequence never alias an in-flight one, and the k/v
dtype+shape invariants hold on both the paged and the contiguous
(:class:`KVState`) caches.  Semantically: a :class:`PagedDecodeBatch` with
sequences joining and leaving at arbitrary steps produces, for every
sequence, token ids bitwise-identical to that row's solo
``generate(use_cache=False)`` decode — the same oracle the PR 2 decode
suite pins the static path to.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelConfigError
from repro.nn.decode_cache import KVState, PagedKVArena
from repro.nn.transformer import T5Model, TransformerConfig

PAD, EOS = 0, 1
_MODEL_CACHE: dict[tuple, T5Model] = {}


def build_model(d_model=8, num_heads=2, num_layers=1, seed=0, eos_id=EOS, vocab_size=24) -> T5Model:
    """A tiny eval-mode model, memoized so hypothesis examples share weights."""
    key = (d_model, num_heads, num_layers, seed, eos_id, vocab_size)
    if key not in _MODEL_CACHE:
        config = TransformerConfig(
            vocab_size=vocab_size,
            d_model=d_model,
            num_heads=num_heads,
            d_ff=2 * d_model,
            num_encoder_layers=num_layers,
            num_decoder_layers=num_layers,
            eos_id=eos_id,
            seed=seed,
        )
        _MODEL_CACHE[key] = T5Model(config).eval()
    return _MODEL_CACHE[key]


def rand_kv(rng, heads=2, steps=1, dim=4, dtype=np.float64):
    """One step's worth of (1, heads, steps, dim) K/V."""
    return rng.normal(size=(1, heads, steps, dim)).astype(dtype)


class TestArenaMechanics:
    def test_pages_allocate_lazily_and_grow_by_doubling(self):
        arena = PagedKVArena(num_layers=1, num_heads=2, head_dim=4, page_size=2, initial_pages=2)
        assert arena.dtype is None and arena.num_pages == 0
        seq = arena.sequence()
        rng = np.random.default_rng(0)
        for _ in range(5):  # 5 positions -> 3 pages; pool must have grown past 2
            seq.append(0, *2 * (rand_kv(rng),))
        assert arena.num_pages == 4  # 2 initial, doubled once
        assert arena.pages_in_use == 3
        assert seq.length == 5

    def test_view_reproduces_appends_bitwise(self):
        arena = PagedKVArena(num_layers=2, num_heads=2, head_dim=4, page_size=3)
        seq = arena.sequence()
        rng = np.random.default_rng(1)
        history = {0: [], 1: []}
        for _ in range(7):
            for layer in (0, 1):
                k, v = rand_kv(rng), rand_kv(rng)
                seq.append(layer, k, v)
                history[layer].append((k, v))
        for layer in (0, 1):
            k_view, v_view = seq.view(layer)
            assert np.array_equal(k_view, np.concatenate([k for k, _ in history[layer]], axis=2))
            assert np.array_equal(v_view, np.concatenate([v for _, v in history[layer]], axis=2))

    def test_release_recycles_pages_without_aliasing_live_sequences(self):
        arena = PagedKVArena(num_layers=1, num_heads=2, head_dim=4, page_size=2, initial_pages=4)
        rng = np.random.default_rng(2)
        keeper, leaver = arena.sequence(), arena.sequence()
        kept = []
        for _ in range(4):
            k, v = rand_kv(rng), rand_kv(rng)
            keeper.append(0, k, v)
            kept.append((k, v))
            leaver.append(0, rand_kv(rng), rand_kv(rng))
        leaver.release()
        assert leaver.released
        reuser = arena.sequence()
        for _ in range(4):  # overwrite exactly the pages the leaver freed
            reuser.append(0, np.full((1, 2, 1, 4), 7.0), np.full((1, 2, 1, 4), 9.0))
        assert arena.stats()["page_reuses"] >= 2
        k_view, v_view = keeper.view(0)
        assert np.array_equal(k_view, np.concatenate([k for k, _ in kept], axis=2))
        assert np.array_equal(v_view, np.concatenate([v for _, v in kept], axis=2))

    def test_release_is_idempotent_and_fences_further_use(self):
        arena = PagedKVArena(num_layers=1, num_heads=2, head_dim=4)
        seq = arena.sequence()
        seq.append(0, *2 * (np.ones((1, 2, 1, 4)),))
        seq.release()
        seq.release()
        assert arena.pages_in_use == 0
        with pytest.raises(ModelConfigError):
            seq.append(0, *2 * (np.ones((1, 2, 1, 4)),))
        with pytest.raises(ModelConfigError):
            seq.view(0)

    def test_dtype_fixed_by_first_write(self):
        arena = PagedKVArena(num_layers=1, num_heads=2, head_dim=4)
        seq = arena.sequence()
        seq.append(0, *2 * (rand_kv(np.random.default_rng(3), dtype=np.float32),))
        assert arena.dtype == np.float32
        with pytest.raises(ModelConfigError):
            arena.sequence().append(0, *2 * (rand_kv(np.random.default_rng(4)),))

    def test_kv_pair_and_geometry_validation(self):
        arena = PagedKVArena(num_layers=1, num_heads=2, head_dim=4)
        seq = arena.sequence()
        ones = np.ones((1, 2, 1, 4))
        with pytest.raises(ModelConfigError):
            seq.append(0, ones, ones.astype(np.float32))  # dtype mismatch
        with pytest.raises(ModelConfigError):
            seq.append(0, ones, np.ones((1, 2, 2, 4)))  # shape mismatch
        with pytest.raises(ModelConfigError):
            seq.append(0, *2 * (np.ones((1, 3, 1, 4)),))  # wrong head count

    def test_constructor_validation(self):
        for kwargs in (
            {"num_layers": 0, "num_heads": 2, "head_dim": 4},
            {"num_layers": 1, "num_heads": 0, "head_dim": 4},
            {"num_layers": 1, "num_heads": 2, "head_dim": 4, "page_size": 0},
            {"num_layers": 1, "num_heads": 2, "head_dim": 4, "initial_pages": 0},
        ):
            with pytest.raises(ModelConfigError):
                PagedKVArena(**kwargs)


class TestKVStateInvariants:
    """The satellite fix: append/set must validate *both* k and v."""

    def test_append_rejects_mismatched_v_dtype(self):
        state = KVState()
        with pytest.raises(ModelConfigError):
            state.append(np.zeros((1, 1, 1, 2)), np.zeros((1, 1, 1, 2), dtype=np.float32))

    def test_append_rejects_mismatched_v_shape(self):
        state = KVState()
        with pytest.raises(ModelConfigError):
            state.append(np.zeros((1, 1, 1, 2)), np.zeros((1, 1, 2, 2)))

    def test_set_enforces_the_same_invariant(self):
        state = KVState(static=True)
        with pytest.raises(ModelConfigError):
            state.set(np.zeros((1, 1, 3, 2)), np.zeros((1, 1, 3, 2), dtype=np.float32))
        with pytest.raises(ModelConfigError):
            state.set(np.zeros((1, 1, 3, 2)), np.zeros((1, 1, 4, 2)))

    def test_matched_pairs_still_work(self):
        state = KVState()
        state.append(np.zeros((1, 1, 1, 2)), np.ones((1, 1, 1, 2)))
        assert state.length == 1
        static = KVState(static=True)
        static.set(np.zeros((1, 1, 3, 2)), np.ones((1, 1, 3, 2)))
        assert static.length == 3


@st.composite
def admission_plan(draw):
    """Rows with independent length budgets plus a staggered admission order."""
    count = draw(st.integers(min_value=2, max_value=6))
    rows, budgets = [], []
    for _ in range(count):
        width = draw(st.integers(min_value=2, max_value=5))
        row = draw(st.lists(st.integers(min_value=4, max_value=23), min_size=width, max_size=width))
        hole = draw(st.integers(min_value=-1, max_value=width - 1))
        if hole >= 0:
            row[hole] = PAD
        rows.append(np.asarray(row, dtype=np.int64))
        budgets.append(draw(st.integers(min_value=1, max_value=8)))
    return rows, budgets


class TestContinuousEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        plan=admission_plan(),
        max_slots=st.integers(min_value=1, max_value=3),
        page_size=st.integers(min_value=1, max_value=5),
        num_layers=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_every_sequence_matches_its_solo_oracle(self, plan, max_slots, page_size, num_layers, seed):
        rows, budgets = plan
        model = build_model(num_layers=num_layers, seed=seed)
        oracles = [
            model.generate(row[None], max_length=budget, use_cache=False)[0]
            for row, budget in zip(rows, budgets)
        ]
        batch = model.paged_decode_batch(max_slots=max_slots, page_size=page_size)
        pending = list(range(len(rows)))
        owner: dict[int, int] = {}
        outputs: dict[int, np.ndarray] = {}
        while len(outputs) < len(rows):
            while pending and batch.free_slots:
                index = pending.pop(0)
                owner[batch.admit(rows[index], max_length=budgets[index])] = index
            for handle, tokens in batch.step().items():
                outputs[owner[handle]] = np.asarray(tokens, dtype=np.int64)
        for index, oracle in enumerate(oracles):
            assert np.array_equal(outputs[index], oracle)
        assert batch.arena.pages_in_use == 0  # every finished sequence freed its pages

    def test_mid_flight_admission_does_not_disturb_batch_mates(self):
        """Admit a second sequence while the first is mid-decode: the first's
        output must equal what it produces decoding alone."""
        model = build_model(seed=7, eos_id=-1)  # no EOS: fixed-length decodes
        first = np.array([5, 6, 7], dtype=np.int64)
        second = np.array([9, 10], dtype=np.int64)
        solo_first = model.generate(first[None], max_length=6, use_cache=False)[0]
        solo_second = model.generate(second[None], max_length=4, use_cache=False)[0]

        batch = model.paged_decode_batch(max_slots=2, page_size=2)
        handle_first = batch.admit(first, max_length=6)
        outputs = {}
        for _ in range(3):
            outputs.update(batch.step())
        handle_second = batch.admit(second, max_length=4)  # joins at step 4
        while len(outputs) < 2:
            outputs.update(batch.step())
        assert np.array_equal(np.asarray(outputs[handle_first]), solo_first)
        assert np.array_equal(np.asarray(outputs[handle_second]), solo_second)

    def test_float32_matches_its_own_oracle(self):
        model = build_model(d_model=16, num_heads=2, seed=2)
        row = np.array([5, 9, 13], dtype=np.int64)
        oracle = model.generate(row[None], max_length=5, use_cache=False, dtype="float32")[0]
        batch = model.paged_decode_batch(max_slots=2, dtype="float32")
        handle = batch.admit(row, max_length=5)
        outputs = {}
        while handle not in outputs:
            outputs.update(batch.step())
        assert np.array_equal(np.asarray(outputs[handle]), oracle)

    def test_slot_exhaustion_and_eviction(self):
        model = build_model(seed=1, eos_id=-1)
        batch = model.paged_decode_batch(max_slots=1)
        handle = batch.admit(np.array([5, 6], dtype=np.int64), max_length=4)
        with pytest.raises(ModelConfigError):
            batch.admit(np.array([7, 8], dtype=np.int64), max_length=4)
        batch.evict(handle)
        assert batch.free_slots == 1 and batch.arena.pages_in_use == 0
        with pytest.raises(ModelConfigError):
            batch.evict(handle)

    def test_training_mode_rejected(self):
        model = build_model(seed=0)
        model.train()
        try:
            with pytest.raises(ModelConfigError):
                model.paged_decode_batch()
        finally:
            model.eval()

    def test_empty_step_is_a_noop(self):
        model = build_model(seed=0)
        assert model.paged_decode_batch().step() == {}
