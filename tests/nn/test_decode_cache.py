"""Decode-equivalence suite: KV-cached decoding must match the naive reference.

The headline guarantee of the incremental-decoding fast path is that it is an
*optimization only*: for every model, batch composition, pad pattern, beam
width and length budget, ``generate(use_cache=True)`` returns bitwise-identical
token ids to the naive reference loops (``use_cache=False``) that re-decode
the full prefix at every step.  Hypothesis drives the property over random
tiny models and inputs; targeted tests pin down the tricky corners —
eos-early-exit, ``max_length`` truncation, the unified greedy/beam output
contract, and cache bookkeeping (append/reorder, layer-count checks, the
inference-only guard).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelConfigError
from repro.nn.attention import RelativePositionBias
from repro.nn.decode_cache import DecodeCache, KVState
from repro.nn.tensor import no_grad
from repro.nn.transformer import T5Model, TransformerConfig

PAD, EOS, BOS = 0, 1, 3
_MODEL_CACHE: dict[tuple, T5Model] = {}


def build_model(
    vocab_size=24, d_model=8, num_heads=2, d_ff=16, num_encoder_layers=1, num_decoder_layers=1, seed=0, eos_id=EOS
) -> T5Model:
    """A tiny eval-mode model; memoized so hypothesis examples share weights."""
    key = (vocab_size, d_model, num_heads, d_ff, num_encoder_layers, num_decoder_layers, seed, eos_id)
    if key not in _MODEL_CACHE:
        config = TransformerConfig(
            vocab_size=vocab_size,
            d_model=d_model,
            num_heads=num_heads,
            d_ff=d_ff,
            num_encoder_layers=num_encoder_layers,
            num_decoder_layers=num_decoder_layers,
            eos_id=eos_id,
            seed=seed,
        )
        _MODEL_CACHE[key] = T5Model(config).eval()
    return _MODEL_CACHE[key]


@st.composite
def batched_inputs(draw):
    """A padded input batch with arbitrary pad patterns (right pads and holes)."""
    vocab_size = 24
    batch = draw(st.integers(min_value=1, max_value=3))
    width = draw(st.integers(min_value=2, max_value=6))
    rows = []
    for _ in range(batch):
        row = draw(
            st.lists(
                st.integers(min_value=4, max_value=vocab_size - 1),
                min_size=width,
                max_size=width,
            )
        )
        # Punch pad holes anywhere — the attention mask must neutralize them
        # identically on both decode paths.
        holes = draw(st.lists(st.integers(min_value=0, max_value=width - 1), max_size=width))
        for hole in holes:
            row[hole] = PAD
        rows.append(row)
    return np.asarray(rows, dtype=np.int64)


class TestGreedyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        input_ids=batched_inputs(),
        max_length=st.integers(min_value=1, max_value=8),
        num_layers=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_cached_matches_reference(self, input_ids, max_length, num_layers, seed):
        model = build_model(num_encoder_layers=num_layers, num_decoder_layers=num_layers, seed=seed)
        cached = model.generate(input_ids, max_length=max_length, use_cache=True)
        naive = model.generate(input_ids, max_length=max_length, use_cache=False)
        assert cached.dtype == naive.dtype == np.int64
        assert np.array_equal(cached, naive)

    def test_single_row_batch(self):
        model = build_model()
        x = np.array([[5, 6, 7]], dtype=np.int64)
        assert np.array_equal(
            model.generate(x, max_length=6, use_cache=True),
            model.generate(x, max_length=6, use_cache=False),
        )

    def test_all_pad_row(self):
        """A fully-padded row (empty attention mask) decodes identically."""
        model = build_model()
        x = np.array([[5, 6, 7], [PAD, PAD, PAD]], dtype=np.int64)
        assert np.array_equal(
            model.generate(x, max_length=5, use_cache=True),
            model.generate(x, max_length=5, use_cache=False),
        )


class TestBeamEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(
        input_ids=batched_inputs(),
        max_length=st.integers(min_value=1, max_value=6),
        num_beams=st.integers(min_value=2, max_value=3),
        length_penalty=st.sampled_from([0.7, 1.0, 1.4]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_cached_matches_reference(self, input_ids, max_length, num_beams, length_penalty, seed):
        model = build_model(seed=seed)
        cached = model.generate(
            input_ids, max_length=max_length, num_beams=num_beams, length_penalty=length_penalty, use_cache=True
        )
        naive = model.generate(
            input_ids, max_length=max_length, num_beams=num_beams, length_penalty=length_penalty, use_cache=False
        )
        assert np.array_equal(cached, naive)

    def test_two_layer_model(self):
        model = build_model(num_encoder_layers=2, num_decoder_layers=2, seed=7)
        x = np.array([[4, 9, 12, PAD], [14, PAD, 6, 5]], dtype=np.int64)
        assert np.array_equal(
            model.generate(x, max_length=7, num_beams=3, use_cache=True),
            model.generate(x, max_length=7, num_beams=3, use_cache=False),
        )

    def test_wide_beam_exceeding_vocab_slice(self):
        """num_beams close to vocab still selects identical candidates."""
        model = build_model(vocab_size=12, seed=2)
        x = np.array([[4, 5], [6, 7], [8, 9]], dtype=np.int64)
        assert np.array_equal(
            model.generate(x, max_length=4, num_beams=4, use_cache=True),
            model.generate(x, max_length=4, num_beams=4, use_cache=False),
        )


class TestEosAndTruncation:
    def test_eos_early_exit(self):
        """Forcing the first emitted token to be EOS exercises early exit."""
        probe = build_model(seed=5)
        x = np.array([[5, 8, 11]], dtype=np.int64)
        first = int(probe.generate(x, max_length=1, use_cache=False)[0, 0])
        model = build_model(seed=5, eos_id=first)
        for num_beams in (1, 2):
            cached = model.generate(x, max_length=6, num_beams=num_beams, use_cache=True)
            naive = model.generate(x, max_length=6, num_beams=num_beams, use_cache=False)
            assert np.array_equal(cached, naive)
            assert cached.shape == (1, 1)
            assert cached[0, 0] == first

    def test_mixed_finish_times_pad_after_eos(self):
        """Rows finishing early are pad-extended while the rest keep decoding."""
        model = build_model(seed=3)
        x = np.array([[5, 6, 7], [9, 10, 11], [12, 13, 14]], dtype=np.int64)
        cached = model.generate(x, max_length=8, use_cache=True)
        naive = model.generate(x, max_length=8, use_cache=False)
        assert np.array_equal(cached, naive)
        for row in cached:
            eos_positions = np.flatnonzero(row == EOS)
            if eos_positions.size:
                assert np.all(row[eos_positions[0] + 1 :] == PAD)

    def test_max_length_truncation(self):
        model = build_model(seed=1, eos_id=-1)  # nothing ever matches EOS
        x = np.array([[5, 6], [7, 8]], dtype=np.int64)
        for num_beams in (1, 2):
            cached = model.generate(x, max_length=3, num_beams=num_beams, use_cache=True)
            naive = model.generate(x, max_length=3, num_beams=num_beams, use_cache=False)
            assert np.array_equal(cached, naive)
            assert cached.shape == (2, 3)


class TestOutputContract:
    """Greedy and beam share one output contract: (batch, L) with L = longest
    generated row (<= max_length), shorter rows right-padded with pad_id."""

    @pytest.mark.parametrize("num_beams", [1, 3])
    @pytest.mark.parametrize("use_cache", [True, False])
    def test_width_is_longest_row(self, num_beams, use_cache):
        model = build_model(seed=4)
        x = np.array([[5, 6, 7, 8], [9, 10, PAD, PAD]], dtype=np.int64)
        out = model.generate(x, max_length=6, num_beams=num_beams, use_cache=use_cache)
        assert out.ndim == 2 and out.shape[0] == 2
        assert 1 <= out.shape[1] <= 6
        lengths = []
        for row in out:
            eos_positions = np.flatnonzero(row == EOS)
            lengths.append(int(eos_positions[0]) + 1 if eos_positions.size else out.shape[1])
        assert max(lengths) == out.shape[1]

    @pytest.mark.parametrize("use_cache", [True, False])
    def test_greedy_and_beam_agree_on_shape_semantics(self, use_cache):
        model = build_model(seed=6, eos_id=-1)
        x = np.array([[5, 6, 7]], dtype=np.int64)
        greedy = model.generate(x, max_length=4, num_beams=1, use_cache=use_cache)
        beam = model.generate(x, max_length=4, num_beams=2, use_cache=use_cache)
        # With no EOS reachable both must decode exactly max_length tokens.
        assert greedy.shape == beam.shape == (1, 4)


class TestCacheMechanics:
    def test_kvstate_append_and_length(self):
        state = KVState()
        assert state.length == 0
        k = np.zeros((2, 2, 1, 4))
        state.append(k, k)
        state.append(k + 1, k + 1)
        assert state.length == 2
        assert state.k.shape == (2, 2, 2, 4)
        assert np.all(state.k[:, :, 1, :] == 1.0)

    def test_static_state_rejects_append(self):
        state = KVState(static=True)
        with pytest.raises(ModelConfigError):
            state.append(np.zeros((1, 1, 1, 2)), np.zeros((1, 1, 1, 2)))

    def test_reorder_gathers_rows(self):
        cache = DecodeCache(num_layers=2)
        for layer in cache.layers:
            base = np.arange(3, dtype=np.float64).reshape(3, 1, 1, 1)
            layer.self_attention.append(base, base)
            layer.cross_attention.set(base * 10, base * 10)
        cache.reorder([2, 0, 2])
        assert cache.batch_size == 3
        for layer in cache.layers:
            assert layer.self_attention.k[:, 0, 0, 0].tolist() == [2.0, 0.0, 2.0]
            assert layer.cross_attention.k[:, 0, 0, 0].tolist() == [20.0, 0.0, 20.0]

    def test_layer_count_mismatch_rejected(self):
        model = build_model(num_decoder_layers=2)
        with pytest.raises(ModelConfigError):
            with no_grad():
                model.decoder(np.array([[BOS]]), model.encoder(np.array([[5, 6]])), cache=DecodeCache(1))

    def test_cached_attention_is_inference_only(self):
        model = build_model()
        encoder_hidden = None
        with no_grad():
            encoder_hidden = model.encoder(np.array([[5, 6]]))
        with pytest.raises(ModelConfigError):
            model.decoder(np.array([[BOS]]), encoder_hidden, cache=DecodeCache(1))

    def test_incremental_decoder_matches_full_pass(self):
        """Feeding tokens one-by-one through the cache reproduces the full
        decoder forward bit-for-bit in the attended positions' token choices."""
        model = build_model(num_decoder_layers=2, seed=9)
        source = np.array([[5, 6, 7, 8]], dtype=np.int64)
        target = np.array([[BOS, 10, 11, 12]], dtype=np.int64)
        with no_grad():
            encoder_hidden = model.encoder(source)
            full = model.decoder(target, encoder_hidden).numpy()
            cache = DecodeCache(2)
            steps = [
                model.decoder(target[:, i : i + 1], encoder_hidden, cache=cache).numpy()
                for i in range(target.shape[1])
            ]
        incremental = np.concatenate(steps, axis=1)
        assert np.allclose(incremental, full, atol=1e-10)
        assert cache.length == target.shape[1]


class TestRelativePositionBiasOffset:
    def test_offset_row_matches_full_bias(self):
        bias = RelativePositionBias(num_heads=2, num_buckets=8, max_distance=16)
        full = bias(6, 6).numpy()
        for position in range(6):
            row = bias(1, 6, query_offset=position).numpy()
            assert np.array_equal(row, full[:, :, position : position + 1, :])
