"""Activation-aware calibration suite: statistics, equalization, policy search.

The contracts under test (documented in ``docs/numerics.md``):

* equalization scales are powers of two within ``2**±12``, so folding them
  into a weight and dividing them back out is **bitwise transparent** on the
  unrounded float64 master — the migration redistributes int8 precision
  without adding noise of its own;
* asymmetric (zero-point) int8 round-trips within half a quantization step
  per element, and the dequantized master obeys
  ``master = ((codes + zero_point) * scales) / equalization`` exactly;
* ``quantize_int8`` is idempotent — a second call is a no-op, never a
  re-round of the already-rounded master;
* ``token_agreement`` handles length-mismatched decodes (overlap compared,
  tail counted as disagreement) and rejects batch mismatches;
* :class:`QuantPolicy` has a strict JSON round trip: unknown fields, unknown
  modes and out-of-range knobs all raise;
* ``apply_policy`` / ``sensitivity_scan`` / ``calibrate_policy`` leave the
  model exactly as promised (pinned modules float32-snapped, trial modules
  restored bitwise, the model unquantized after a scan).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelConfigError
from repro.nn.calibration import (
    ActivationObserver,
    ActivationStats,
    QuantPolicy,
    apply_policy,
    calibrate_policy,
    collect_activation_stats,
    equalization_scales,
    observe_activations,
    quantizable_modules,
    sensitivity_scan,
    token_agreement,
)
from repro.nn.layers import Embedding, Linear, asymmetric_int8, symmetric_int8
from repro.nn.transformer import T5Model, TransformerConfig

PAD, EOS = 0, 1

_MODEL_CACHE: dict[tuple, T5Model] = {}


def build_model(vocab_size=32, d_model=16, num_heads=2, d_ff=32, num_layers=1, seed=0) -> T5Model:
    """A tiny eval-mode model; memoized so hypothesis examples share weights."""
    key = (vocab_size, d_model, num_heads, d_ff, num_layers, seed)
    if key not in _MODEL_CACHE:
        config = TransformerConfig(
            vocab_size=vocab_size,
            d_model=d_model,
            num_heads=num_heads,
            d_ff=d_ff,
            num_encoder_layers=num_layers,
            num_decoder_layers=num_layers,
            eos_id=EOS,
            seed=seed,
        )
        _MODEL_CACHE[key] = T5Model(config).eval()
    return _MODEL_CACHE[key]


def fresh_model(seed=0) -> T5Model:
    """An unshared model for tests that mutate weights (quantize, policies)."""
    config = TransformerConfig(
        vocab_size=32,
        d_model=16,
        num_heads=2,
        d_ff=32,
        num_encoder_layers=1,
        num_decoder_layers=1,
        eos_id=EOS,
        seed=seed,
    )
    return T5Model(config).eval()


def calib_inputs(batch=3, width=6, seed=0, vocab=32) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(2, vocab, size=(batch, width))


# ---------------------------------------------------------------------------
# equalization scales
# ---------------------------------------------------------------------------


ranges = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestEqualizationScales:
    @given(
        data=st.data(),
        channels=st.integers(min_value=1, max_value=24),
        alpha=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_scales_are_powers_of_two_in_range(self, data, channels, alpha):
        weight = np.array(data.draw(st.lists(ranges, min_size=channels, max_size=channels)))
        activation = np.array(data.draw(st.lists(ranges, min_size=channels, max_size=channels)))
        scales = equalization_scales(weight, activation, alpha)
        exponents = np.log2(scales)
        np.testing.assert_array_equal(exponents, np.rint(exponents))
        assert np.all(np.abs(exponents) <= 12)

    @given(
        data=st.data(),
        channels=st.integers(min_value=1, max_value=16),
        alpha=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_fold_is_bitwise_transparent(self, data, channels, alpha, seed):
        # Multiplying by a power of two and dividing it back only shifts the
        # float exponent: (W * s) / s must reproduce W bit for bit.
        weight = np.array(data.draw(st.lists(ranges, min_size=channels, max_size=channels)))
        activation = np.array(data.draw(st.lists(ranges, min_size=channels, max_size=channels)))
        scales = equalization_scales(weight, activation, alpha)
        matrix = np.random.default_rng(seed).normal(size=(channels, 5))
        folded = matrix * scales.reshape(-1, 1)
        np.testing.assert_array_equal(folded / scales.reshape(-1, 1), matrix)

    def test_zero_channels_take_scale_one(self):
        scales = equalization_scales([0.0, 1.0, 2.0], [5.0, 0.0, 3.0], alpha=0.5)
        assert scales[0] == 1.0 and scales[1] == 1.0

    def test_alpha_zero_ignores_activations(self):
        # With alpha=0 the scales depend only on the weight ranges (pure
        # weight flattening): wildly different activation ranges must not
        # change the result.
        scales = equalization_scales([1.0, 4.0, 0.25], [9.0, 2.0, 77.0], alpha=0.0)
        np.testing.assert_array_equal(scales, equalization_scales([1.0, 4.0, 0.25], [1.0, 1.0, 1.0], alpha=0.0))

    def test_module_equalization_skips_alpha_zero(self):
        from repro.nn.calibration import module_equalization

        layer = Linear(3, 2, seed=0)
        stats = ActivationStats(
            absmax=np.array([1.0, 2.0, 3.0]), percentile=np.array([1.0, 2.0, 3.0]), samples=4, percentile_q=99.9
        )
        assert module_equalization(layer, stats, alpha=0.0) is None
        assert module_equalization(layer, None, alpha=0.5) is None
        assert module_equalization(layer, stats, alpha=0.5) is not None

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ModelConfigError):
            equalization_scales([1.0], [1.0], alpha=1.5)

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ModelConfigError):
            equalization_scales([1.0, 2.0], [1.0], alpha=0.5)


# ---------------------------------------------------------------------------
# asymmetric int8 and the equalized round trip
# ---------------------------------------------------------------------------


class TestAsymmetricInt8:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), offset=st.floats(min_value=-8, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_error_within_half_step(self, seed, offset):
        values = np.random.default_rng(seed).normal(loc=offset, size=(6, 9))
        codes, scales, zero_points = asymmetric_int8(values, axis=0)
        rebuilt = (codes.astype(np.float64) + zero_points) * scales
        assert np.all(np.abs(values - rebuilt) <= scales / 2.0 + 1e-12)

    def test_constant_slices_exact(self):
        values = np.full((4, 3), 2.5)
        codes, scales, zero_points = asymmetric_int8(values, axis=0)
        np.testing.assert_array_equal((codes.astype(np.float64) + zero_points) * scales, values)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_skewed_rows_beat_symmetric(self, seed):
        # The asymmetric mode exists for mass that sits off-center: on a
        # strictly positive matrix it must never be worse than symmetric.
        values = np.random.default_rng(seed).uniform(3.0, 5.0, size=(8, 8))
        sym_codes, sym_scales = symmetric_int8(values, axis=0)
        asym_codes, asym_scales, asym_zp = asymmetric_int8(values, axis=0)
        sym_error = np.abs(values - sym_codes.astype(np.float64) * sym_scales).max()
        asym_error = np.abs(values - (asym_codes.astype(np.float64) + asym_zp) * asym_scales).max()
        assert asym_error <= sym_error + 1e-12


class TestEqualizedQuantization:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1), asymmetric=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_master_identity(self, seed, asymmetric):
        # The dequantized master must be exactly ((codes + zp) * scales) / eq.
        rng = np.random.default_rng(seed)
        layer = Linear(6, 5, bias=False, seed=seed)
        eq = np.exp2(rng.integers(-3, 4, size=6).astype(np.float64))
        layer.quantize_int8(equalization=eq, asymmetric=asymmetric)
        master = layer.weight_q.astype(np.float64)
        if layer.weight_zero_point is not None:
            master = master + layer.weight_zero_point
        master = master * layer.weight_scale
        master = master / layer.weight_equalization
        np.testing.assert_array_equal(layer.weight.data, master)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_equalized_error_bound(self, seed):
        # Folding eq in and out bounds the *weight* error by half a step of
        # the folded quantizer, deflated per-channel by eq.
        rng = np.random.default_rng(seed)
        layer = Linear(6, 5, bias=False, seed=seed)
        original = layer.weight.data.copy()
        eq = np.exp2(rng.integers(-3, 4, size=6).astype(np.float64))
        layer.quantize_int8(equalization=eq)
        bound = (layer.weight_scale / 2.0) / eq.reshape(-1, 1)
        assert np.all(np.abs(original - layer.weight.data) <= bound + 1e-12)

    def test_unit_equalization_matches_plain_quantization(self):
        plain = Linear(6, 5, bias=False, seed=3)
        with_eq = Linear(6, 5, bias=False, seed=3)
        plain.quantize_int8()
        with_eq.quantize_int8(equalization=np.ones(6))
        np.testing.assert_array_equal(plain.weight_q, with_eq.weight_q)
        np.testing.assert_array_equal(plain.weight_scale, with_eq.weight_scale)
        np.testing.assert_array_equal(plain.weight.data, with_eq.weight.data)

    def test_non_positive_equalization_rejected(self):
        layer = Linear(4, 3, seed=0)
        with pytest.raises(ModelConfigError):
            layer.quantize_int8(equalization=np.array([1.0, 0.0, 1.0, 1.0]))

    def test_double_quantize_is_noop(self):
        layer = Linear(6, 5, bias=False, seed=7)
        layer.quantize_int8(equalization=np.exp2([1, -1, 0, 2, 0, -2]).astype(np.float64), asymmetric=True)
        codes, scales = layer.weight_q, layer.weight_scale
        master = layer.weight.data.copy()
        layer.quantize_int8()  # second call: no re-round, no state change
        assert layer.weight_q is codes and layer.weight_scale is scales
        np.testing.assert_array_equal(layer.weight.data, master)

    def test_embedding_double_quantize_is_noop(self):
        emb = Embedding(12, 8, seed=2)
        emb.quantize_int8(asymmetric=True)
        codes = emb.weight_q
        master = emb.weight.data.copy()
        emb.quantize_int8(asymmetric=False)
        assert emb.weight_q is codes
        np.testing.assert_array_equal(emb.weight.data, master)


# ---------------------------------------------------------------------------
# int8 state round trip with zero points and equalization
# ---------------------------------------------------------------------------


class TestCalibratedStateRoundTrip:
    def test_zp_eq_entries_round_trip_bitwise(self):
        model = fresh_model(seed=5)
        stats = collect_activation_stats(model, calib_inputs(), max_length=4)
        policy = QuantPolicy(modes={"shared_embedding": "int8_asym"})
        apply_policy(model, policy, stats)
        state = model.int8_state_dict()
        assert any(key.endswith(".int8_eq") for key in state)
        assert any(key.endswith(".int8_zp") for key in state)

        twin = fresh_model(seed=999)  # different weights, then overwritten
        twin.load_state_dict(state)
        for (_, module), (_, twin_module) in zip(quantizable_modules(model), quantizable_modules(twin)):
            np.testing.assert_array_equal(module.weight.data, twin_module.weight.data)
            np.testing.assert_array_equal(module.weight_q, twin_module.weight_q)
            if module.weight_equalization is not None:
                np.testing.assert_array_equal(module.weight_equalization, twin_module.weight_equalization)
            if module.weight_zero_point is not None:
                np.testing.assert_array_equal(module.weight_zero_point, twin_module.weight_zero_point)


# ---------------------------------------------------------------------------
# token agreement on length-mismatched decodes
# ---------------------------------------------------------------------------


class TestTokenAgreement:
    def test_identical_decodes_agree_fully(self):
        tokens = np.array([[3, 4, 5], [6, 7, 1]])
        assert token_agreement(tokens, tokens) == 1.0

    def test_length_mismatch_tail_counts_as_disagreement(self):
        reference = np.array([[3, 4, 5, 6]])
        candidate = np.array([[3, 4, 5, 6, 7, 8]])
        # 4 matching positions over a max width of 6.
        assert token_agreement(reference, candidate) == pytest.approx(4 / 6)
        # Symmetric: the shorter side as candidate scores the same.
        assert token_agreement(candidate, reference) == pytest.approx(4 / 6)

    def test_overlap_disagreement_and_tail_combine(self):
        reference = np.array([[3, 4, 5]])
        candidate = np.array([[3, 9, 5, 6, 7]])
        assert token_agreement(reference, candidate) == pytest.approx(2 / 5)

    def test_batch_mismatch_raises(self):
        with pytest.raises(ModelConfigError):
            token_agreement(np.zeros((2, 3), dtype=int), np.zeros((3, 3), dtype=int))

    def test_empty_is_full_agreement(self):
        assert token_agreement(np.zeros((0, 4), dtype=int), np.zeros((0, 2), dtype=int)) == 1.0
        assert token_agreement(np.zeros((2, 0), dtype=int), np.zeros((2, 0), dtype=int)) == 1.0

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        batch=st.integers(min_value=1, max_value=4),
        width_a=st.integers(min_value=1, max_value=8),
        width_b=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_and_symmetric(self, seed, batch, width_a, width_b):
        rng = np.random.default_rng(seed)
        reference = rng.integers(0, 4, size=(batch, width_a))
        candidate = rng.integers(0, 4, size=(batch, width_b))
        forward = token_agreement(reference, candidate)
        assert 0.0 <= forward <= 1.0
        assert forward == token_agreement(candidate, reference)


# ---------------------------------------------------------------------------
# QuantPolicy serialization
# ---------------------------------------------------------------------------


class TestQuantPolicy:
    def test_round_trip(self):
        policy = QuantPolicy(
            modes={"encoder.layers.0.ffn_in": "float32", "shared_embedding": "int8_asym"},
            alpha=0.25,
            target_agreement=0.99,
            calibration_samples=64,
        )
        assert QuantPolicy.from_dict(policy.as_dict()) == policy
        assert QuantPolicy.from_json(policy.to_json()) == policy

    def test_mode_for_defaults_to_symmetric(self):
        policy = QuantPolicy(modes={"a": "float32"})
        assert policy.mode_for("a") == "float32"
        assert policy.mode_for("anything_else") == "int8"

    def test_float32_modules_sorted(self):
        policy = QuantPolicy(modes={"z": "float32", "a": "float32", "m": "int8"})
        assert policy.float32_modules == ("a", "z")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ModelConfigError):
            QuantPolicy(modes={"a": "int4"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ModelConfigError):
            QuantPolicy.from_dict({"modes": {}, "alpha": 0.5, "surprise": 1})

    def test_tampered_json_rejected(self):
        policy = QuantPolicy(modes={"a": "int8"})
        tampered = policy.to_json().replace("int8", "int3")
        with pytest.raises(ModelConfigError):
            QuantPolicy.from_json(tampered)
        with pytest.raises(ModelConfigError):
            QuantPolicy.from_json("not json at all")

    def test_out_of_range_knobs_rejected(self):
        with pytest.raises(ModelConfigError):
            QuantPolicy(alpha=2.0)
        with pytest.raises(ModelConfigError):
            QuantPolicy(target_agreement=1.5)
        with pytest.raises(ModelConfigError):
            QuantPolicy(calibration_samples=-1)


# ---------------------------------------------------------------------------
# observers and stats collection
# ---------------------------------------------------------------------------


class TestActivationObserver:
    def test_accumulates_running_maxima(self):
        observer = ActivationObserver(percentile_q=100.0)
        observer.update(np.array([[1.0, -2.0], [0.5, 1.0]]))
        observer.update(np.array([[-3.0, 0.0]]))
        stats = observer.stats()
        np.testing.assert_array_equal(stats.absmax, [3.0, 2.0])
        assert stats.samples == 3

    def test_empty_observer_has_no_stats(self):
        assert ActivationObserver().stats() is None

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ModelConfigError):
            ActivationObserver(percentile_q=0.0)

    def test_range_prefers_percentile_with_absmax_fallback(self):
        stats = ActivationStats(
            absmax=np.array([4.0, 5.0]), percentile=np.array([2.0, 0.0]), samples=10, percentile_q=99.0
        )
        np.testing.assert_array_equal(stats.range_per_channel(), [2.0, 5.0])

    def test_observe_detaches_even_on_error(self):
        model = build_model()
        with pytest.raises(RuntimeError):
            with observe_activations(model):
                raise RuntimeError("boom")
        for _, module in quantizable_modules(model):
            assert "_activation_observer" not in module.__dict__

    def test_collect_stats_covers_quantizable_modules(self):
        model = build_model(seed=3)
        stats = collect_activation_stats(model, calib_inputs(), max_length=4)
        names = {name for name, _ in quantizable_modules(model)}
        assert set(stats) <= names
        assert "shared_embedding" in stats  # the tied LM head observes too
        for name, module in quantizable_modules(model):
            if name not in stats:
                continue
            channels = (
                module.weight.data.shape[0] if isinstance(module, Linear) else module.weight.data.shape[1]
            )
            assert stats[name].absmax.shape == (channels,)
            assert stats[name].samples > 0


# ---------------------------------------------------------------------------
# policy application, sensitivity, calibration
# ---------------------------------------------------------------------------


class TestApplyPolicy:
    def test_unknown_module_names_raise(self):
        model = fresh_model()
        with pytest.raises(ModelConfigError):
            apply_policy(model, QuantPolicy(modes={"no_such_module": "float32"}))

    def test_all_float32_policy_rejected(self):
        model = fresh_model()
        modes = {name: "float32" for name, _ in quantizable_modules(model)}
        with pytest.raises(ModelConfigError):
            apply_policy(model, QuantPolicy(modes=modes))

    def test_modes_land_on_modules(self):
        model = fresh_model(seed=11)
        names = [name for name, _ in quantizable_modules(model)]
        pinned, asym = names[0], names[1]
        policy = QuantPolicy(modes={pinned: "float32", asym: "int8_asym"})
        apply_policy(model, policy)
        by_name = dict(quantizable_modules(model))
        assert not by_name[pinned].quantized
        # float32 pin snaps the master through float32 storage.
        np.testing.assert_array_equal(
            by_name[pinned].weight.data, by_name[pinned].weight.data.astype(np.float32).astype(np.float64)
        )
        assert by_name[asym].quantized and by_name[asym].weight_zero_point is not None
        for name in names[2:]:
            assert by_name[name].quantized and by_name[name].weight_zero_point is None

    def test_reapply_skips_quantized_modules(self):
        model = fresh_model(seed=12)
        policy = QuantPolicy(modes={})
        apply_policy(model, policy)
        masters = {name: module.weight.data for name, module in quantizable_modules(model)}
        apply_policy(model, policy)  # idempotent at the model level too
        for name, module in quantizable_modules(model):
            assert module.weight.data is masters[name]


class TestSensitivityAndCalibration:
    def test_scan_restores_model_bitwise(self):
        model = fresh_model(seed=21)
        before = {name: module.weight.data.copy() for name, module in quantizable_modules(model)}
        damages = sensitivity_scan(model, calib_inputs(), max_length=4)
        assert set(damages) == {name for name, _ in quantizable_modules(model)}
        assert all(value >= 0.0 for value in damages.values())
        for name, module in quantizable_modules(model):
            assert not module.quantized
            assert module.weight.requires_grad
            np.testing.assert_array_equal(module.weight.data, before[name])

    def test_scan_rejects_quantized_model(self):
        model = fresh_model(seed=22)
        model.quantize_int8()
        with pytest.raises(ModelConfigError):
            sensitivity_scan(model, calib_inputs(), max_length=4)

    def test_calibrate_policy_returns_valid_policy_and_leaves_model_float(self):
        model = fresh_model(seed=23)
        inputs = calib_inputs(batch=4, width=6, seed=9)
        policy, stats = calibrate_policy(model, inputs, target_agreement=0.9, max_length=4)
        assert isinstance(policy, QuantPolicy)
        assert policy.calibration_samples == 4
        assert policy.target_agreement == 0.9
        QuantPolicy.from_json(policy.to_json())  # serializable as produced
        known = {name for name, _ in quantizable_modules(model)}
        assert set(policy.modes) <= known
        assert len(policy.float32_modules) < len(known)  # never pins everything
        for _, module in quantizable_modules(model):
            assert not module.quantized
        assert set(stats) <= known

    def test_calibrate_policy_validates_knobs(self):
        model = fresh_model(seed=24)
        with pytest.raises(ModelConfigError):
            calibrate_policy(model, calib_inputs(), max_float_fraction=1.5)
        with pytest.raises(ModelConfigError):
            calibrate_policy(model, calib_inputs(), target_agreement=-0.1)
        with pytest.raises(ModelConfigError):
            calibrate_policy(model, calib_inputs(), max_margin_risk=0.0)
