"""Tests for the autograd engine, including numerical gradient checks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor, no_grad


def numerical_gradient(function, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = function(x)
        flat[index] = original - eps
        minus = function(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build_loss, shape, seed=0, atol=1e-4):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=shape)
    tensor = Tensor(values.copy(), requires_grad=True)
    loss = build_loss(tensor)
    loss.backward()
    analytic = tensor.grad

    def scalar(x):
        return float(build_loss(Tensor(x.copy())).data)

    numeric = numerical_gradient(scalar, values.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol)


class TestElementwiseGradients:
    def test_add_mul(self):
        check_gradient(lambda x: ((x * 3.0 + 2.0) * x).sum(), (4, 3))

    def test_division(self):
        check_gradient(lambda x: (x / (x * x + 2.0)).sum(), (5,))

    def test_exp_log(self):
        check_gradient(lambda x: ((x.exp() + 1.5).log()).sum(), (3, 2))

    def test_tanh_sigmoid(self):
        check_gradient(lambda x: (x.tanh() * x.sigmoid()).sum(), (6,))

    def test_relu(self):
        check_gradient(lambda x: (x.relu() * 2.0).sum(), (10,), seed=3)

    def test_gelu(self):
        check_gradient(lambda x: x.gelu().sum(), (8,))

    def test_power(self):
        check_gradient(lambda x: ((x * x + 1.0) ** 1.5).sum(), (4,))


class TestMatmulAndShapes:
    def test_matmul_gradient(self):
        rng = np.random.default_rng(0)
        other = Tensor(rng.normal(size=(3, 2)))
        check_gradient(lambda x: (x @ other).sum(), (4, 3))

    def test_batched_matmul_gradient(self):
        rng = np.random.default_rng(1)
        other = Tensor(rng.normal(size=(2, 4, 3)))
        check_gradient(lambda x: (x @ other).sum(), (2, 3, 4))

    def test_reshape_transpose(self):
        check_gradient(lambda x: (x.reshape(6, 2).transpose() * 2.0).sum(), (3, 4))

    def test_getitem(self):
        check_gradient(lambda x: x[:, 1].sum(), (3, 4))

    def test_concatenate(self):
        rng = np.random.default_rng(2)
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda x: Tensor.concatenate([x, other], axis=0).sum(), (2, 3))

    def test_embedding_lookup(self):
        ids = np.array([[0, 2], [1, 1]])
        check_gradient(lambda x: x.embedding_lookup(ids).sum(), (4, 3))

    def test_masked_fill(self):
        mask = np.array([True, False, True, False])
        check_gradient(lambda x: x.masked_fill(mask, 0.0).sum(), (4,))


class TestReductions:
    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=1) ** 2).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda x: x.mean(axis=-1, keepdims=True).sum(), (2, 5))

    def test_max(self):
        check_gradient(lambda x: x.max(axis=-1).sum(), (3, 4), seed=5)


class TestBroadcasting:
    def test_broadcast_add(self):
        bias = Tensor(np.ones(3), requires_grad=True)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        loss = (x + bias).sum()
        loss.backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 4.0))

    def test_broadcast_mul(self):
        scale = Tensor(np.full((1, 3), 2.0), requires_grad=True)
        x = Tensor(np.ones((4, 3)))
        loss = (x * scale).sum()
        loss.backward()
        assert scale.grad.shape == (1, 3)
        np.testing.assert_allclose(scale.grad, np.full((1, 3), 4.0))


class TestBackwardSemantics:
    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_gradient_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = (x * 2).sum()
        loss.backward()
        loss2 = (x * 3).sum()
        loss2.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_detach(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x.detach() * 2).sum()
        assert not y.requires_grad

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    def test_softmax_like_composition_gradcheck(self, rows, cols):
        def loss(x):
            shifted = x - x.max(axis=-1, keepdims=True).detach()
            exp = shifted.exp()
            probs = exp / exp.sum(axis=-1, keepdims=True)
            return (probs * probs).sum()

        check_gradient(loss, (rows, cols), seed=rows * 7 + cols, atol=1e-3)
