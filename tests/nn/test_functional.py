"""Tests for softmax / cross-entropy and mask helpers."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_rows_sum_to_one(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        probs = F.softmax(logits).numpy()
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_stability_with_large_logits(self):
        logits = Tensor(np.array([[1e4, 1e4 + 1.0]]))
        probs = F.softmax(logits).numpy()
        assert np.isfinite(probs).all()

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.default_rng(1).normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(logits).numpy(), np.log(F.softmax(logits).numpy()), atol=1e-10
        )


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 4), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_uniform_prediction_is_log_vocab(self):
        logits = Tensor(np.zeros((3, 8)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(np.log(8), abs=1e-9)

    def test_ignore_index_excludes_positions(self):
        logits = np.zeros((2, 4))
        logits[0, 0] = 10.0
        loss = F.cross_entropy(Tensor(logits), np.array([0, -1]), ignore_index=-1)
        assert loss.item() < 1e-3

    def test_all_ignored_returns_zero(self):
        loss = F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 0]), ignore_index=0)
        assert loss.item() == 0.0

    def test_gradient_shape(self):
        logits = Tensor(np.random.default_rng(0).normal(size=(4, 6)), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0, 1, 2, 3]))
        loss.backward()
        assert logits.grad.shape == (4, 6)

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = np.full((1, 5), -20.0)
        logits[0, 0] = 20.0
        plain = F.cross_entropy(Tensor(logits), np.array([0]))
        smoothed = F.cross_entropy(Tensor(logits), np.array([0]), label_smoothing=0.1)
        assert smoothed.item() > plain.item()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))

    def test_sequence_cross_entropy_ignores_padding(self):
        logits = Tensor(np.zeros((1, 3, 5)))
        targets = np.array([[1, 0, 0]])  # pad_id = 0
        loss = F.sequence_cross_entropy(logits, targets, pad_id=0)
        assert loss.item() == pytest.approx(np.log(5), abs=1e-9)


class TestMasks:
    def test_causal_mask_lower_triangular(self):
        mask = F.causal_mask(4)
        assert mask[0, 1] == False  # noqa: E712 - numpy bool comparison
        assert mask[3, 0] == True  # noqa: E712

    def test_causal_mask_offset_queries_are_suffix_rows(self):
        # With key_length > length the queries are the last `length` positions;
        # the incremental decoder relies on this matching the full mask's rows.
        full = F.causal_mask(6)
        suffix = F.causal_mask(2, key_length=6)
        assert suffix.shape == (2, 6)
        assert np.array_equal(suffix, full[4:])

    def test_causal_mask_single_step_attends_everything(self):
        assert F.causal_mask(1, key_length=5).all()

    def test_causal_mask_rejects_short_keys(self):
        with pytest.raises(ValueError):
            F.causal_mask(4, key_length=2)

    def test_attention_mask_bias_values(self):
        bias = F.attention_mask_bias(np.array([True, False]))
        assert bias[0] == 0.0
        assert bias[1] < -1e8
