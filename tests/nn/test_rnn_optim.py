"""Tests for the GRU seq2seq baseline and the optimizers/schedules."""

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.nn.layers import Parameter
from repro.nn.optim import Adam, ConstantSchedule, LinearWarmupSchedule, SGD, clip_grad_norm
from repro.nn.rnn import GRUCell, Seq2SeqModel
from repro.nn.tensor import Tensor


class TestGRUCell:
    def test_hidden_shape(self):
        cell = GRUCell(4, 6)
        hidden = cell(Tensor(np.ones((3, 4))), Tensor(np.zeros((3, 6))))
        assert hidden.shape == (3, 6)

    def test_hidden_bounded_by_tanh(self):
        cell = GRUCell(4, 6)
        hidden = cell(Tensor(np.ones((2, 4)) * 100), Tensor(np.zeros((2, 6))))
        assert np.abs(hidden.numpy()).max() <= 1.0 + 1e-9


class TestSeq2SeqModel:
    def test_forward_and_generate(self):
        model = Seq2SeqModel(vocab_size=30, embedding_dim=8, hidden_size=12, max_decode_length=6)
        x = np.random.default_rng(0).integers(4, 30, size=(2, 5))
        y = np.random.default_rng(1).integers(4, 30, size=(2, 4))
        out = model(x, y)
        assert out["logits"].shape == (2, 4, 30)
        generated = model.generate(x, max_length=6)
        assert generated.shape[0] == 2 and generated.shape[1] <= 6

    def test_training_reduces_loss(self):
        model = Seq2SeqModel(vocab_size=20, embedding_dim=8, hidden_size=12)
        x = np.random.default_rng(0).integers(4, 20, size=(4, 5))
        y = np.random.default_rng(1).integers(4, 20, size=(4, 4))
        optimizer = Adam(model.parameters(), learning_rate=1e-2)
        losses = []
        for _ in range(10):
            optimizer.zero_grad()
            out = model(x, y)
            out["loss"].backward()
            optimizer.step()
            losses.append(out["loss"].item())
        assert losses[-1] < losses[0]

    def test_invalid_vocab(self):
        with pytest.raises(ModelConfigError):
            Seq2SeqModel(vocab_size=0)


class TestOptimizers:
    def _quadratic_parameter(self):
        return Parameter(np.array([5.0, -3.0]))

    def test_sgd_descends(self):
        parameter = self._quadratic_parameter()
        optimizer = SGD([parameter], learning_rate=0.1)
        for _ in range(50):
            optimizer.zero_grad()
            parameter.grad = 2 * parameter.data
            optimizer.step()
        assert np.abs(parameter.data).max() < 0.1

    def test_adam_descends(self):
        parameter = self._quadratic_parameter()
        optimizer = Adam([parameter], learning_rate=0.2)
        for _ in range(100):
            optimizer.zero_grad()
            parameter.grad = 2 * parameter.data
            optimizer.step()
        assert np.abs(parameter.data).max() < 0.1

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], learning_rate=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        parameter.grad = np.array([0.0])
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ModelConfigError):
            Adam([], learning_rate=0.1)


class TestClipGradNorm:
    def test_clips_to_max_norm(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.full(4, 10.0)
        norm = clip_grad_norm([parameter], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(parameter.grad) == pytest.approx(1.0)

    def test_no_clip_when_below(self):
        parameter = Parameter(np.zeros(4))
        parameter.grad = np.full(4, 0.1)
        clip_grad_norm([parameter], max_norm=10.0)
        np.testing.assert_allclose(parameter.grad, np.full(4, 0.1))

    def test_invalid_max_norm(self):
        with pytest.raises(ModelConfigError):
            clip_grad_norm([Parameter(np.zeros(2))], max_norm=0.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.01)
        assert schedule.learning_rate(0) == schedule.learning_rate(100) == 0.01

    def test_linear_warmup_then_decay(self):
        schedule = LinearWarmupSchedule(1.0, total_steps=100, warmup_ratio=0.1)
        assert schedule.learning_rate(0) < schedule.learning_rate(9)
        assert schedule.learning_rate(9) == pytest.approx(1.0)
        assert schedule.learning_rate(50) > schedule.learning_rate(90)
        assert schedule.learning_rate(100) == pytest.approx(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ModelConfigError):
            LinearWarmupSchedule(1.0, total_steps=0)
        with pytest.raises(ModelConfigError):
            LinearWarmupSchedule(1.0, total_steps=10, warmup_ratio=2.0)
