"""Tests for Module, Linear, Embedding, RMSNorm and Dropout."""

import numpy as np
import pytest

from repro.errors import ModelConfigError
from repro.nn.layers import Dropout, Embedding, FeedForward, Linear, Module, Parameter, RMSNorm
from repro.nn.tensor import Tensor


class TestModule:
    def test_named_parameters_recurse(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.linear = Linear(3, 2)
                self.layers = [Linear(2, 2), Linear(2, 2)]

        names = dict(Outer().named_parameters())
        assert "linear.weight" in names
        assert "layers.0.weight" in names and "layers.1.bias" in names

    def test_state_dict_roundtrip(self):
        layer = Linear(4, 3, seed=1)
        clone = Linear(4, 3, seed=2)
        clone.load_state_dict(layer.state_dict())
        np.testing.assert_allclose(clone.weight.data, layer.weight.data)

    def test_state_dict_mismatch_raises(self):
        layer = Linear(4, 3)
        with pytest.raises(ModelConfigError):
            layer.load_state_dict({"weight": np.zeros((4, 3))})

    def test_train_eval_propagates(self):
        class Wrapper(Module):
            def __init__(self):
                super().__init__()
                self.dropout = Dropout(0.5)

        wrapper = Wrapper()
        wrapper.eval()
        assert wrapper.dropout.training is False


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3)
        out = layer(Tensor(np.ones((2, 5))))
        assert out.shape == (2, 3)

    def test_no_bias(self):
        layer = Linear(5, 3, bias=False)
        assert layer.bias is None

    def test_invalid_dimensions(self):
        with pytest.raises(ModelConfigError):
            Linear(0, 3)


class TestEmbedding:
    def test_lookup_shape(self):
        embedding = Embedding(10, 4)
        out = embedding(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_id(self):
        embedding = Embedding(10, 4)
        with pytest.raises(ModelConfigError):
            embedding(np.array([[11]]))

    def test_gradients_accumulate_per_row(self):
        embedding = Embedding(5, 2)
        out = embedding(np.array([[0, 0, 1]]))
        out.sum().backward()
        assert embedding.weight.grad[0, 0] == pytest.approx(2.0)
        assert embedding.weight.grad[1, 0] == pytest.approx(1.0)
        assert embedding.weight.grad[2, 0] == pytest.approx(0.0)


class TestRMSNorm:
    def test_unit_scale_output_has_unit_rms(self):
        norm = RMSNorm(8)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 8)) * 10)
        out = norm(x).numpy()
        rms = np.sqrt((out**2).mean(axis=-1))
        np.testing.assert_allclose(rms, np.ones(3), atol=1e-3)

    def test_weight_scales_output(self):
        norm = RMSNorm(4)
        norm.weight.data = np.full(4, 2.0)
        out = norm(Tensor(np.ones((1, 4)))).numpy()
        np.testing.assert_allclose(out, np.full((1, 4), 2.0), atol=1e-5)


class TestDropout:
    def test_eval_mode_is_identity(self):
        dropout = Dropout(0.5)
        dropout.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(dropout(x).numpy(), x.numpy())

    def test_training_mode_zeroes_some(self):
        dropout = Dropout(0.5, seed=0)
        out = dropout(Tensor(np.ones((100,)))).numpy()
        assert (out == 0).any()
        assert (out > 1.0).any()  # surviving values are scaled up

    def test_invalid_rate(self):
        with pytest.raises(ModelConfigError):
            Dropout(1.0)


class TestFeedForward:
    def test_shapes_and_activations(self):
        for activation in ("relu", "gelu"):
            ff = FeedForward(8, 16, activation=activation)
            out = ff(Tensor(np.ones((2, 3, 8))))
            assert out.shape == (2, 3, 8)

    def test_unknown_activation(self):
        with pytest.raises(ModelConfigError):
            FeedForward(8, 16, activation="swish")
