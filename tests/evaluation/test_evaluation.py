"""Tests for the evaluation harness: task corpora, evaluators, reports, statistics tables and case studies."""

import pytest

from repro.evaluation import (
    build_task_corpora,
    case_studies,
    evaluate_generation_model,
    evaluate_predictions,
    evaluate_text_to_vis_model,
    format_metric_row,
    format_table,
    strip_modality_tags,
    table01_nvbench_statistics,
    table02_table_corpora_statistics,
    table03_fevisqa_statistics,
)
from repro.evaluation.reports import format_ablation_table, format_text_to_vis_table
from repro.evaluation.tasks import TASKS


@pytest.fixture(scope="module")
def corpora():
    return build_task_corpora(
        num_databases=8,
        examples_per_database=6,
        num_chart2text=20,
        num_wikitabletext=20,
        max_fevisqa=120,
        max_test_examples=10,
        seed=0,
    )


class TestTaskCorpora:
    def test_all_tasks_present(self, corpora):
        assert set(corpora.train_pairs) == set(TASKS)
        assert set(corpora.test_pairs) == set(TASKS)
        for task in TASKS:
            assert corpora.train_pairs[task], task

    def test_sources_carry_modality_tags(self, corpora):
        assert corpora.train_pairs["text_to_vis"][0].source.startswith("<NL>")
        assert corpora.train_pairs["vis_to_text"][0].source.startswith("<VQL>")
        assert corpora.train_pairs["fevisqa"][0].source.startswith("<Question>")
        assert corpora.train_pairs["table_to_text"][0].source.startswith("<Table>")

    def test_strip_modality_tags(self):
        assert strip_modality_tags("<VQL> visualize bar <NL> hello") == "visualize bar hello"

    def test_test_examples_capped(self, corpora):
        for task in TASKS:
            assert len(corpora.test_pairs[task]) <= 10


class TestEvaluators:
    def test_text_to_vis_oracle_gets_perfect_em(self, corpora):
        examples = corpora.nvbench_splits.test[:6]
        lookup = {e.question: e.query_text for e in examples}

        class Oracle:
            def predict(self, question, schema):
                return lookup[question]

        from repro.baselines.base import TextToVisBaseline

        class OracleBaseline(TextToVisBaseline):
            def fit(self, examples, pool):
                pass

            def predict(self, question, schema):
                return lookup[question]

        result = evaluate_text_to_vis_model(OracleBaseline(), examples, corpora.pool)
        assert result.em == pytest.approx(1.0)

    def test_generation_oracle_gets_high_scores(self, corpora):
        examples = corpora.test_pairs["vis_to_text"][:5]
        lookup = {e.source: e.target for e in examples}
        metrics = evaluate_generation_model(lambda source: lookup[source], examples)
        assert metrics.bleu1 > 0.95
        assert metrics.meteor > 0.9

    def test_evaluate_predictions_strips_tags(self):
        metrics = evaluate_predictions(["<NL> a bar chart"], ["<NL> a bar chart"])
        assert metrics.bleu1 == pytest.approx(1.0, abs=1e-6)


class TestStatisticsTables:
    def test_table01_structure(self):
        rows = table01_nvbench_statistics(examples_per_database=6, num_databases=8, seed=0)
        assert set(rows) == {"train", "valid", "test", "total"}
        total = rows["total"]
        assert total["instances"] == sum(rows[split]["instances"] for split in ("train", "valid", "test"))
        assert total["instances_without_join"] <= total["instances"]

    def test_table02_structure(self):
        rows = table02_table_corpora_statistics(num_chart2text=30, num_wikitabletext=30, seed=0)
        assert rows["chart2text"]["instances"] == 30
        assert rows["wikitabletext"]["more_than_150"] == 0

    def test_table03_structure(self):
        rows = table03_fevisqa_statistics(examples_per_database=6, num_databases=8, seed=0)
        for split in ("train", "valid", "test"):
            row = rows[split]
            assert row["qa_pairs"] == row["type_1"] + row["type_2"] + row["type_3"]


class TestReports:
    def test_format_metric_row_alignment(self):
        row = format_metric_row("model", {"EM": 0.5, "examples": 10}, keys=["EM"])
        assert "0.5000" in row

    def test_format_table_includes_all_rows(self):
        rows = [{"model": "a", "metrics": {"EM": 0.1}}, {"model": "b", "metrics": {"EM": 0.2}}]
        table = format_table("demo", rows, ["EM"])
        assert "demo" in table and "a" in table and "b" in table

    def test_format_text_to_vis_table(self):
        rows = [{"model": "x", "setting": "-", "without_join": {"Vis EM": 1.0, "Axis EM": 0.5, "Data EM": 0.5, "EM": 0.25}}]
        table = format_text_to_vis_table("Table IV", rows, "without_join")
        assert "Vis EM" in table and "1.0000" in table

    def test_format_ablation_table_scales_by_100(self):
        rows = [{"model": "full", "method": "MFT", "scores": {"text_to_vis": 0.5, "vis_to_text": 0.5, "fevisqa": 0.5, "table_to_text": 0.5, "mean": 0.5}}]
        table = format_ablation_table("Table XII", rows)
        assert "50.0000" in table


class TestCaseStudies:
    def test_text_to_vis_case_study_structure(self, corpora):
        study = case_studies.text_to_vis_case_study(corpora.pool)
        assert study["ground_truth"].startswith("visualize scatter select avg ( rooms.baseprice )")
        assert "scatter" in study["chart"]
        assert study["vega_lite"]["mark"] == "point"

    def test_text_to_vis_case_study_with_systems(self, corpora):
        from repro.baselines import RuleBasedTextToVis

        baseline = RuleBasedTextToVis()
        baseline.fit([], corpora.pool)
        study = case_studies.text_to_vis_case_study(corpora.pool, systems={"rule": baseline})
        assert "rule" in study["predictions"]
        assert "query" in study["predictions"]["rule"]

    def test_vis_to_text_case_study(self, corpora):
        study = case_studies.vis_to_text_case_study(corpora.pool)
        assert "not in" in study["query"]
        assert study["ground_truth"].lower().startswith("list the last name")

    def test_fevisqa_case_study(self, corpora):
        study = case_studies.fevisqa_case_study(corpora.pool)
        assert len(study["qa"]) == 4
        questions = [row["question"] for row in study["qa"]]
        assert any("How many parts" in question for question in questions)
        parts_row = next(row for row in study["qa"] if "How many parts" in row["question"])
        assert int(parts_row["ground_truth"]) > 0

    def test_table_to_text_case_study(self):
        study = case_studies.table_to_text_case_study(systems={"heuristic": __import__("repro.baselines", fromlist=["ZeroShotHeuristicGeneration"]).ZeroShotHeuristicGeneration()})
        assert study["ground_truth"].startswith("Sallim was the publisher")
        assert "heuristic" in study["predictions"]
