"""Tests for DV knowledge encoding: schema/table/query linearization, filtration and sequences."""

import pytest

from repro.encoding import (
    encode_query,
    encode_result_table,
    encode_schema,
    encode_table,
    fevisqa_input,
    fevisqa_target,
    filter_schema,
    matched_tables,
    table_to_text_input,
    text_to_vis_input,
    text_to_vis_target,
    vis_to_text_input,
    vis_to_text_target,
)
from repro.database import execute_query
from repro.vql import parse_dv_query


class TestSchemaEncoding:
    def test_format(self, gallery_schema):
        encoded = encode_schema(gallery_schema)
        assert encoded.startswith("| theme_gallery | artist : artist.artist_id,")
        assert "| exhibition :" in encoded

    def test_unqualified(self, gallery_schema):
        encoded = encode_schema(gallery_schema, qualify_columns=False)
        assert "artist : artist_id," in encoded


class TestTableEncoding:
    def test_basic_table(self):
        encoded = encode_table(["a", "b"], [["x", 1], ["y", 2]], title="demo")
        assert encoded.startswith("demo | col : a | b row 1 : x | 1 row 2 : y | 2")

    def test_max_rows(self):
        encoded = encode_table(["a"], [[1], [2], [3]], max_rows=1)
        assert "row 2" not in encoded

    def test_result_table_encoding(self, gallery_database, pie_query_text):
        result = execute_query(parse_dv_query(pie_query_text), gallery_database)
        encoded = encode_result_table(result)
        assert "| col : artist.country | count ( artist.country )" in encoded
        assert "row 1 :" in encoded


class TestQueryEncoding:
    def test_standardizes_raw_text(self, gallery_schema):
        encoded = encode_query("visualize pie select country, count(country) from artist group by country", gallery_schema)
        assert "artist.country" in encoded

    def test_accepts_ast(self, pie_query_text):
        query = parse_dv_query(pie_query_text)
        assert encode_query(query) == query.to_text()


class TestSchemaFiltration:
    def test_matches_mentioned_table(self, gallery_schema):
        question = "Give me a pie chart about the proportion of the number of countries in the artist table"
        assert matched_tables(question, gallery_schema) == ["artist"]
        filtered = filter_schema(question, gallery_schema)
        assert filtered.table_names() == ["artist"]

    def test_matches_by_column_name(self, gallery_schema):
        assert "exhibition" in matched_tables("show the total attendance per year", gallery_schema)

    def test_no_match_returns_full_schema(self, gallery_schema):
        filtered = filter_schema("completely unrelated request", gallery_schema)
        assert filtered.table_names() == gallery_schema.table_names()

    def test_plural_table_mention(self, gallery_schema):
        assert "artist" in matched_tables("how many artists are there per country ?", gallery_schema)


class TestSequenceBuilders:
    def test_text_to_vis_sequences(self, gallery_schema, pie_query_text):
        source = text_to_vis_input("show countries", gallery_schema)
        target = text_to_vis_target(parse_dv_query(pie_query_text))
        assert source.startswith("<NL> show countries <schema> | theme_gallery")
        assert target.startswith("<VQL> visualize pie")

    def test_vis_to_text_sequences(self, gallery_schema, pie_query_text):
        source = vis_to_text_input(parse_dv_query(pie_query_text), gallery_schema)
        assert source.startswith("<VQL> visualize pie") and "<schema>" in source
        assert vis_to_text_target("a chart").startswith("<NL> a chart")

    def test_fevisqa_sequences(self, gallery_schema, pie_query_text):
        source = fevisqa_input("how many parts ?", query=pie_query_text, schema=gallery_schema, table="| col : a row 1 : 1")
        for tag in ("<Question>", "<VQL>", "<schema>", "<Table>"):
            assert tag in source
        assert fevisqa_target("3") == "<Answer> 3"

    def test_table_to_text_input(self):
        assert table_to_text_input("| col : a row 1 : 1").startswith("<Table> | col : a")
