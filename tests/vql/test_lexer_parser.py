"""Tests for the DV query lexer and parser."""

import pytest

from repro.errors import VQLSyntaxError
from repro.vql import ChartType, SortDirection, parse_dv_query, tokenize
from repro.vql.ast import Subquery


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("visualize bar select a.b , count ( * ) from t")
        values = [token.value for token in tokens]
        assert "visualize" in values and "a.b" in values and "*" in values and "," in values

    def test_quoted_strings(self):
        tokens = tokenize("where name = 'Columbus Crew'")
        strings = [token for token in tokens if token.kind == "string"]
        assert strings and strings[0].value == "Columbus Crew"

    def test_double_quotes(self):
        tokens = tokenize('where name = "Hello"')
        assert any(token.kind == "string" and token.value == "Hello" for token in tokens)

    def test_numbers(self):
        tokens = tokenize("where age > 42.5")
        assert any(token.kind == "number" and token.value == "42.5" for token in tokens)

    def test_invalid_character(self):
        with pytest.raises(VQLSyntaxError):
            tokenize("select # from t")

    def test_positions_recorded(self):
        tokens = tokenize("visualize bar")
        assert tokens[0].position == 0
        assert tokens[1].position == 10


class TestParserBasics:
    def test_simple_group_count(self, pie_query_text):
        query = parse_dv_query(pie_query_text)
        assert query.chart_type is ChartType.PIE
        assert query.from_table == "artist"
        assert query.group_by[0].to_text() == "artist.country"
        assert query.select[1].function == "count"

    def test_case_insensitive_keywords(self):
        query = parse_dv_query("VISUALIZE BAR SELECT a, COUNT(a) FROM t GROUP BY a ORDER BY a DESC")
        assert query.chart_type is ChartType.BAR
        assert query.order_by.direction is SortDirection.DESC

    def test_default_order_direction_is_asc(self):
        query = parse_dv_query("visualize bar select a, count(a) from t group by a order by a")
        assert query.order_by.direction is SortDirection.ASC

    def test_alias_resolution(self):
        query = parse_dv_query(
            "visualize bar select Years_Played, count(*) from player as T1 "
            "join team as T2 on T1.team = T2.team_id where T2.name = 'x' group by Years_Played"
        )
        assert query.joins[0].left.table == "player"
        assert query.joins[0].right.table == "team"
        assert query.where[0].left.table == "team"

    def test_multi_word_chart_type(self):
        query = parse_dv_query("visualize stacked bar select a, b, c from t")
        assert query.chart_type is ChartType.STACKED_BAR

    def test_bin_clause(self):
        query = parse_dv_query("visualize bar select d, count(d) from t group by d bin d by year")
        assert query.bin is not None and query.bin.unit == "year"

    def test_where_conditions(self):
        query = parse_dv_query("visualize bar select a, count(a) from t where a = 'x' and b > 3 group by a")
        assert len(query.where) == 2
        assert query.where[1].operator == ">"
        assert query.where[1].value == 3

    def test_subquery_parsed(self):
        query = parse_dv_query(
            "visualize bar select s.lname, count(s.lname) from s where s.id not in "
            "(select h.id from h where h.kind = 'food') group by s.lname"
        )
        assert isinstance(query.where[0].value, Subquery)
        assert query.where[0].operator == "not in"


class TestParserErrors:
    def test_missing_visualize(self):
        with pytest.raises(VQLSyntaxError):
            parse_dv_query("select a from t")

    def test_unknown_chart_type(self):
        with pytest.raises(VQLSyntaxError):
            parse_dv_query("visualize donut select a, b from t")

    def test_trailing_garbage(self):
        with pytest.raises(VQLSyntaxError):
            parse_dv_query("visualize bar select a, b from t extra tokens")

    def test_truncated_query(self):
        with pytest.raises(VQLSyntaxError):
            parse_dv_query("visualize bar select a, b from")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "visualize bar select t.a , count ( t.a ) from t group by t.a",
            "visualize scatter select t.x , t.y from t",
            "visualize pie select t.a , sum ( t.b ) from t group by t.a order by sum ( t.b ) desc",
            "visualize line select t.d , count ( t.d ) from t group by t.d bin t.d by month",
            "visualize bar select a.x , count ( a.x ) from a join b on a.id = b.id where b.k = 'v' group by a.x order by a.x asc",
        ],
    )
    def test_serialization_fixed_point(self, text):
        first = parse_dv_query(text)
        second = parse_dv_query(first.to_text())
        assert first.to_text() == second.to_text()
