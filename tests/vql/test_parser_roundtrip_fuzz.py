"""Property-based fuzzing of the VQL toolchain.

Three properties, each over hypothesis-generated :class:`DVQuery` ASTs:

1. **Round-trip** — ``parse_dv_query(query.to_text()) == query`` for every
   AST the canonical serializer can emit (all seven chart types, aggregates
   with DISTINCT and ``count(*)``, multi-way joins, WHERE conjunctions with
   IN / NOT IN subqueries, GROUP BY, ORDER BY, BIN BY).
2. **Standardize idempotence** — ``standardize(standardize(q)) ==
   standardize(q)``, with and without a schema.
3. **Total error behaviour** — mutated/truncated/garbled query text never
   escapes the :class:`~repro.errors.ReproError` hierarchy: the parser
   either succeeds or raises a VQL error, never ``IndexError`` /
   ``KeyError`` / ``ValueError``.

The identifier alphabet avoids grammar keywords (the parser is
keyword-driven) and the literal strategies stay inside what the lexer can
re-tokenize (non-negative numbers, quote-free strings) — those are grammar
limits, not test shortcuts.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.vql.ast import (
    AGGREGATE_FUNCTIONS,
    TIME_BIN_UNITS,
    AggregateExpr,
    BinClause,
    ChartType,
    ColumnRef,
    Condition,
    DVQuery,
    JoinClause,
    OrderByClause,
    SortDirection,
    Subquery,
)
from repro.vql.parser import parse_dv_query
from repro.vql.standardize import standardize_dv_query

# Words the parser treats as structure; identifiers must avoid them.
_KEYWORDS = frozenset(
    [
        "visualize", "select", "from", "join", "on", "where", "and", "group",
        "by", "order", "asc", "desc", "bin", "in", "not", "like", "distinct", "as",
        *AGGREGATE_FUNCTIONS,
        *TIME_BIN_UNITS,
        "bar", "pie", "line", "scatter", "stacked", "grouping",
    ]
)

_identifiers = (
    st.from_regex(r"[a-z_][a-z0-9_]{0,7}", fullmatch=True)
    .filter(lambda word: word not in _KEYWORDS)
)

_columns = st.builds(
    ColumnRef,
    column=_identifiers,
    table=st.one_of(st.none(), _identifiers),
)

# String literals: anything the lexer's quoted-string token can carry back.
_string_literals = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789 %_.,!?-", max_size=12
)
# Numbers: the grammar has no sign and no exponent; eighths stay exact in
# both float repr and arithmetic.
_number_literals = st.one_of(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=8 * 10**4).map(lambda n: n / 8),
)


def _select_items(allow_wildcard: bool = True):
    plain = st.builds(AggregateExpr, column=_columns, function=st.none())
    aggregate_column = st.one_of(_columns, st.just(ColumnRef("*"))) if allow_wildcard else _columns
    aggregated = st.builds(
        AggregateExpr,
        column=aggregate_column,
        function=st.sampled_from(AGGREGATE_FUNCTIONS),
        distinct=st.booleans(),
    ).map(
        # '*' is only grammatical inside count(); retarget other aggregates.
        lambda item: item
        if not item.column.is_wildcard or item.function == "count"
        else AggregateExpr(column=ColumnRef("c0"), function=item.function, distinct=item.distinct)
    )
    return st.one_of(plain, aggregated)


_joins = st.builds(JoinClause, table=_identifiers, left=_columns, right=_columns)

_subqueries = st.builds(
    Subquery,
    select=_select_items(),
    from_table=_identifiers,
    joins=st.tuples() | st.tuples(_joins),
    where=st.tuples()
    | st.tuples(
        st.builds(
            Condition,
            left=_columns,
            operator=st.sampled_from(["=", "!=", ">", "<", ">=", "<="]),
            value=st.one_of(_string_literals, _number_literals),
        )
    ),
)


def _conditions():
    comparison = st.builds(
        Condition,
        left=_columns,
        operator=st.sampled_from(["=", "!=", ">", "<", ">=", "<="]),
        value=st.one_of(_string_literals, _number_literals),
    )
    like = st.builds(Condition, left=_columns, operator=st.just("like"), value=_string_literals)
    membership = st.builds(
        Condition,
        left=_columns,
        operator=st.sampled_from(["in", "not in"]),
        value=_subqueries,
    )
    return st.one_of(comparison, like, membership)


_queries = st.builds(
    DVQuery,
    chart_type=st.sampled_from(list(ChartType)),
    select=st.lists(_select_items(), min_size=1, max_size=3).map(tuple),
    from_table=_identifiers,
    joins=st.lists(_joins, max_size=2).map(tuple),
    where=st.lists(_conditions(), max_size=3).map(tuple),
    group_by=st.lists(_columns, max_size=2).map(tuple),
    order_by=st.one_of(
        st.none(),
        st.builds(
            OrderByClause,
            expression=_select_items(),
            direction=st.sampled_from(list(SortDirection)),
        ),
    ),
    bin=st.one_of(
        st.none(),
        st.builds(BinClause, column=_columns, unit=st.sampled_from(TIME_BIN_UNITS)),
    ),
)


class TestRoundTrip:
    @settings(max_examples=150, deadline=None)
    @given(query=_queries)
    def test_parse_inverts_to_text(self, query):
        assert parse_dv_query(query.to_text()) == query

    @settings(max_examples=100, deadline=None)
    @given(query=_queries)
    def test_standardize_is_idempotent(self, query):
        once = standardize_dv_query(query)
        assert standardize_dv_query(once) == once

    @settings(max_examples=100, deadline=None)
    @given(query=_queries)
    def test_standardized_text_reparses_to_standardized_ast(self, query):
        once = standardize_dv_query(query)
        assert parse_dv_query(once.to_text()) == once


_NOISE_TOKENS = [
    "select", "from", "visualize", "stacked", "grouping", "where", "group", "by",
    "order", "bin", "join", "on", "and", "not", "in", "like", "count", "(", ")",
    ",", "=", "!=", "<=", ">=", "<", ">", "'txt'", "3.5", "42", "tbl.col", "*",
]


@st.composite
def _mutated_query_text(draw) -> str:
    """Valid query text with token-level damage applied."""
    text = draw(_queries).to_text()
    tokens = text.split()
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        action = draw(st.sampled_from(["delete", "insert", "duplicate", "swap", "truncate"]))
        if not tokens:
            break
        index = draw(st.integers(min_value=0, max_value=len(tokens) - 1))
        if action == "delete":
            tokens.pop(index)
        elif action == "insert":
            tokens.insert(index, draw(st.sampled_from(_NOISE_TOKENS)))
        elif action == "duplicate":
            tokens.insert(index, tokens[index])
        elif action == "swap" and len(tokens) >= 2:
            other = draw(st.integers(min_value=0, max_value=len(tokens) - 1))
            tokens[index], tokens[other] = tokens[other], tokens[index]
        elif action == "truncate":
            tokens = tokens[:index]
    return " ".join(tokens)


class TestParserTotality:
    @settings(max_examples=300, deadline=None)
    @given(text=_mutated_query_text())
    def test_mutated_queries_raise_only_vql_errors(self, text):
        try:
            parse_dv_query(text)
        except ReproError:
            # VQLSyntaxError (or another library error) is the contract;
            # IndexError / KeyError / ValueError would fail the test.
            pass

    @settings(max_examples=150, deadline=None)
    @given(text=st.text(max_size=40))
    def test_arbitrary_text_raises_only_vql_errors(self, text):
        try:
            parse_dv_query(text)
        except ReproError:
            pass

    def test_multiword_chart_type_garbage_is_a_syntax_error(self):
        """Regression: 'visualize stacked <garbage>' leaked a ValueError."""
        import pytest

        from repro.errors import VQLSyntaxError

        for text in ("visualize stacked pie select a from t", "visualize grouping 5 select a from t"):
            with pytest.raises(VQLSyntaxError):
                parse_dv_query(text)
