"""Tests for the DV query AST helpers, standardization rules and schema validation."""

import pytest

from repro.errors import VQLValidationError
from repro.vql import parse_dv_query, standardize_dv_query, standardize_text
from repro.vql.ast import AggregateExpr, ChartType, ColumnRef, DVQuery
from repro.vql.validation import is_query_compatible, validate_dv_query


class TestAstComponents:
    def test_vis_axis_data_components(self, pie_query_text):
        query = parse_dv_query(pie_query_text)
        assert query.vis_component() == "pie"
        assert query.axis_component() == ("artist.country", "count ( artist.country )")
        data = query.data_component()
        assert data["from"] == "artist"
        assert data["group_by"] == ("artist.country",)

    def test_has_join_and_tables(self):
        query = parse_dv_query("visualize bar select a.x, count(a.x) from a join b on a.id = b.id group by a.x")
        assert query.has_join
        assert query.tables() == ["a", "b"]

    def test_requires_select(self):
        with pytest.raises(ValueError):
            DVQuery(chart_type=ChartType.BAR, select=(), from_table="t")

    def test_columns_collects_all_references(self):
        query = parse_dv_query(
            "visualize bar select a.x, count(a.x) from a join b on a.id = b.id "
            "where a.k = 'v' group by a.x order by count(a.x) desc"
        )
        rendered = {ref.to_text() for ref in query.columns()}
        assert {"a.x", "a.id", "b.id", "a.k"} <= rendered


class TestStandardization:
    def test_paper_join_example(self, ):
        from repro.database import Column, ColumnType, DatabaseSchema, TableSchema

        schema = DatabaseSchema(
            "soccer",
            [
                TableSchema("player", [Column("player_id", ColumnType.NUMBER), Column("years_played", ColumnType.NUMBER), Column("team", ColumnType.NUMBER)], "player_id"),
                TableSchema("team", [Column("team_id", ColumnType.NUMBER), Column("name", ColumnType.TEXT)], "team_id"),
            ],
        )
        raw = (
            'Visualize BAR SELECT Years_Played, COUNT(*) FROM player AS T1 JOIN team AS T2 '
            'ON T1.Team = T2.Team_id WHERE T2.Name = "Columbus Crew" GROUP BY Years_Played ORDER BY Years_Played'
        )
        expected = (
            "visualize bar select player.years_played , count ( player.years_played ) from player "
            "join team on player.team = team.team_id where team.name = 'columbus crew' "
            "group by player.years_played order by player.years_played asc"
        )
        assert standardize_text(raw, schema) == expected

    def test_columns_qualified_with_from_table_without_schema(self):
        standardized = standardize_text("visualize bar select country, count(country) from artist group by country")
        assert "artist.country" in standardized

    def test_count_star_uses_group_column(self):
        standardized = standardize_text("visualize bar select city, count(*) from shop group by city")
        assert "count ( shop.city )" in standardized

    def test_string_literals_lowercased(self):
        standardized = standardize_text("visualize bar select a, count(a) from t where a = 'BIG' group by a")
        assert "'big'" in standardized

    def test_order_without_direction_gets_asc(self):
        standardized = standardize_text("visualize bar select a, count(a) from t group by a order by a")
        assert standardized.endswith("asc")

    def test_star_outside_count_rejected(self):
        query = parse_dv_query("visualize bar select *, sum(a) from t group by a")
        with pytest.raises(VQLValidationError):
            standardize_dv_query(query)

    def test_idempotent(self, gallery_schema, pie_query_text):
        once = standardize_text(pie_query_text, gallery_schema)
        twice = standardize_text(once, gallery_schema)
        assert once == twice


class TestValidation:
    def test_valid_query_passes(self, gallery_schema, pie_query_text):
        validate_dv_query(parse_dv_query(pie_query_text), gallery_schema)

    def test_unknown_table(self, gallery_schema):
        query = parse_dv_query("visualize bar select x.a, count(x.a) from x group by x.a")
        with pytest.raises(VQLValidationError):
            validate_dv_query(query, gallery_schema)

    def test_unknown_column(self, gallery_schema):
        query = parse_dv_query("visualize bar select artist.salary, count(artist.salary) from artist group by artist.salary")
        with pytest.raises(VQLValidationError):
            validate_dv_query(query, gallery_schema)

    def test_sum_on_text_column_rejected(self, gallery_schema):
        query = parse_dv_query("visualize bar select artist.country, sum(artist.country) from artist group by artist.country")
        with pytest.raises(VQLValidationError):
            validate_dv_query(query, gallery_schema)

    def test_bin_requires_time_column(self, gallery_schema):
        query = parse_dv_query(
            "visualize bar select artist.country, count(artist.country) from artist group by artist.country bin artist.country by year"
        )
        with pytest.raises(VQLValidationError):
            validate_dv_query(query, gallery_schema)

    def test_chart_arity(self, gallery_schema):
        query = DVQuery(
            chart_type=ChartType.PIE,
            select=(AggregateExpr(column=ColumnRef("country", "artist")),),
            from_table="artist",
        )
        with pytest.raises(VQLValidationError):
            validate_dv_query(query, gallery_schema)

    def test_is_query_compatible(self, gallery_schema, pie_query_text):
        query = parse_dv_query(pie_query_text)
        assert is_query_compatible(query, gallery_schema) is True
        bad = parse_dv_query("visualize bar select z.a, count(z.a) from z group by z.a")
        assert is_query_compatible(bad, gallery_schema) is False
