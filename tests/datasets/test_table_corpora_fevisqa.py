"""Tests for the Chart2Text / WikiTableText / FeVisQA generators."""

import pytest

from repro.datasets import generate_chart2text, generate_fevisqa, generate_nvbench, generate_wikitabletext


class TestChart2Text:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_chart2text(80, seed=0)

    def test_descriptions_mention_leader(self, dataset):
        for example in dataset.examples[:20]:
            leader = str(example.rows[0][0])
            assert leader in example.description

    def test_values_sorted_descending(self, dataset):
        for example in dataset.examples[:20]:
            values = [row[1] for row in example.rows]
            assert values == sorted(values, reverse=True)

    def test_cell_filter(self, dataset):
        filtered = dataset.filter_by_cells(150)
        assert all(example.num_cells <= 150 for example in filtered.examples)
        statistics = dataset.cell_statistics()
        assert statistics["at_most_150"] + statistics["more_than_150"] == len(dataset)

    def test_linearized_contains_title_and_rows(self, dataset):
        text = dataset.examples[0].linearized(max_rows=2)
        assert "| col :" in text and "row 1 :" in text

    def test_deterministic(self):
        assert generate_chart2text(5, seed=2).examples[0].title == generate_chart2text(5, seed=2).examples[0].title


class TestWikiTableText:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_wikitabletext(80, seed=0)

    def test_structural_constraints(self, dataset):
        for example in dataset.examples:
            assert len(example.rows) >= 3
            assert len(example.columns) >= 2

    def test_description_mentions_year(self, dataset):
        for example in dataset.examples[:20]:
            years = {str(row[2]) for row in example.rows}
            assert any(year in example.description for year in years)

    def test_cell_statistics_within_filter(self, dataset):
        statistics = dataset.cell_statistics()
        assert statistics["more_than_150"] == 0


class TestFeVisQA:
    @pytest.fixture(scope="class")
    def dataset(self, small_pool):
        nvbench = generate_nvbench(small_pool, examples_per_database=8, seed=0)
        return generate_fevisqa(nvbench, seed=0)

    def test_three_types_present(self, dataset):
        statistics = dataset.statistics()
        assert statistics["type_1"] > 0 and statistics["type_2"] > 0 and statistics["type_3"] > 0
        # Type 3 dominates, as in the original corpus.
        assert statistics["type_3"] > statistics["type_1"]

    def test_type2_positive_pairs_answer_yes(self, dataset):
        positives = [e for e in dataset.examples if e.question_type == 2 and e.example_id.endswith("t2pos")]
        assert positives and all(example.answer == "Yes" for example in positives)

    def test_type3_numeric_answers_parse(self, dataset):
        for example in dataset.by_type(3):
            if example.question.startswith("How many parts"):
                assert int(example.answer) >= 0

    def test_type1_answers_are_descriptions(self, dataset):
        for example in dataset.by_type(1)[:10]:
            assert len(example.answer.split()) > 3

    def test_examples_carry_context(self, dataset):
        for example in dataset.examples[:20]:
            assert example.query_text
            assert example.schema_text.startswith("|")
