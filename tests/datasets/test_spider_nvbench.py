"""Tests for the synthetic database pool and the nvBench-style corpus."""

import pytest

from repro.database.executor import execute_query
from repro.datasets import generate_nvbench
from repro.datasets.spider import DOMAINS, build_database_pool
from repro.errors import DatasetError
from repro.vql.parser import parse_dv_query
from repro.vql.validation import validate_dv_query


class TestDatabasePool:
    def test_deterministic(self):
        first = build_database_pool(num_databases=5, seed=3)
        second = build_database_pool(num_databases=5, seed=3)
        assert first.names() == second.names()
        table = first.names()[0]
        assert first.get(table).total_rows() == second.get(table).total_rows()

    def test_num_databases_cap(self):
        pool = build_database_pool(num_databases=4)
        assert len(pool) == 4

    def test_case_study_databases_present(self):
        pool = build_database_pool(seed=0)
        for name in ("theme_gallery", "inn", "allergy", "film_rank", "candidate_poll", "local_govt_in_alabama"):
            assert name in pool.names()

    def test_every_database_has_rows_and_valid_fks(self):
        pool = build_database_pool(num_databases=10, seed=1)
        for database in pool:
            assert database.total_rows() > 0
            for fk in database.schema.foreign_keys:
                parent_values = set(database.table(fk.target_table).column_values(fk.target_column))
                child_values = set(database.table(fk.source_table).column_values(fk.source_column))
                assert child_values <= parent_values

    def test_unknown_database(self):
        pool = build_database_pool(num_databases=2)
        with pytest.raises(DatasetError):
            pool.get("not-there")

    def test_domain_variants_expand_names(self):
        pool = build_database_pool(seed=0)
        assert len(pool) == sum(domain.variants for domain in DOMAINS)


class TestNvBenchGeneration:
    @pytest.fixture(scope="class")
    def dataset(self, small_pool):
        return generate_nvbench(small_pool, examples_per_database=15, seed=0)

    def test_examples_are_parsable_and_valid(self, dataset, small_pool):
        for example in dataset.examples:
            query = parse_dv_query(example.query_text)
            validate_dv_query(query, small_pool.get(example.db_id).schema)

    def test_examples_are_executable(self, dataset, small_pool):
        for example in dataset.examples[:60]:
            result = execute_query(example.query, small_pool.get(example.db_id))
            assert result.columns

    def test_join_flag_consistent(self, dataset):
        for example in dataset.examples:
            assert example.has_join == example.query.has_join
        assert dataset.with_join()
        assert dataset.without_join()

    def test_questions_are_nonempty_and_vary(self, dataset):
        questions = [example.question for example in dataset.examples]
        assert all(question.strip() for question in questions)
        assert len(set(questions)) > len(questions) * 0.5

    def test_deterministic(self, small_pool):
        first = generate_nvbench(small_pool, examples_per_database=5, seed=7)
        second = generate_nvbench(small_pool, examples_per_database=5, seed=7)
        assert [e.query_text for e in first.examples] == [e.query_text for e in second.examples]

    def test_statistics(self, dataset):
        statistics = dataset.statistics()
        assert statistics["instances"] == len(dataset.examples)
        assert statistics["instances_without_join"] == len(dataset.without_join())

    def test_hardness_labels(self, dataset):
        assert {example.hardness for example in dataset.examples} <= {"easy", "medium", "hard", "extra hard"}

    def test_invalid_join_fraction(self, small_pool):
        with pytest.raises(DatasetError):
            generate_nvbench(small_pool, examples_per_database=2, join_fraction=2.0)
