"""Differential properties of the corpus-QA retrieval index.

The serving layer treats :class:`~repro.datasets.corpus.CorpusIndex` as a
content-addressed artifact: rankings must be a pure function of the document
list (build twice, or save/load, and every query ranks identically), and the
fingerprint must be a content hash (any single-document mutation changes it;
the saved file hashes to the live index's fingerprint).  These are the
invariants the deploy layer's ``index_fingerprint`` verification and the
response cache's fingerprint-keyed entries both lean on.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.corpus import CorpusDocument, CorpusIndex, corpus_index_fingerprint
from repro.errors import ModelConfigError

TOPICS = (
    "revenue", "temperature", "latency", "population", "rainfall", "enrollment",
    "throughput", "inventory", "emissions", "attendance", "region", "quarter",
    "department", "species", "platform", "cohort", "peak", "median", "growth",
)


def build_documents(count: int = 30, seed: int = 13) -> list[CorpusDocument]:
    rng = random.Random(seed)
    documents = []
    for i in range(count):
        words = rng.sample(TOPICS, 4)
        documents.append(
            CorpusDocument(
                doc_id=f"doc-{i:03d}",
                title=f"{words[0]} by {words[1]}",
                chart=f"bar chart of {words[0]} per {words[1]} sorted by {words[2]}",
                schema=f"| t : t.{words[1]} , t.{words[0]}",
                table=f"{words[1]} | {words[0]} | {words[3]}",
            )
        )
    return documents


def seeded_queries(documents: list[CorpusDocument], count: int = 200, seed: int = 29) -> list[str]:
    """``count`` probes: shuffled token subsets of document text plus noise words."""
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        document = documents[rng.randrange(len(documents))]
        words = [w for w in document.text().split() if rng.random() > 0.4]
        words += rng.sample(TOPICS, rng.randrange(3))
        rng.shuffle(words)
        queries.append(" ".join(words) or document.title)
    return queries


def ranking_table(index: CorpusIndex, queries: list[str], top_k: int = 5) -> list[list[tuple]]:
    return [
        [(document.doc_id, score) for document, score in index.search(query, top_k=top_k)]
        for query in queries
    ]


class TestDeterminism:
    def test_two_builds_rank_200_queries_identically(self):
        documents = build_documents()
        queries = seeded_queries(documents)
        first = CorpusIndex(documents)
        second = CorpusIndex(list(documents))
        assert ranking_table(first, queries) == ranking_table(second, queries)
        assert first.fingerprint() == second.fingerprint()

    def test_save_load_ranks_200_queries_identically(self, tmp_path):
        documents = build_documents()
        queries = seeded_queries(documents)
        index = CorpusIndex(documents)
        path = index.save(tmp_path / "index.json")
        reloaded = CorpusIndex.load(path)
        assert ranking_table(index, queries) == ranking_table(reloaded, queries)
        assert reloaded.fingerprint() == index.fingerprint()
        assert reloaded.documents == index.documents


class TestContentHash:
    def test_saved_file_hashes_to_the_live_fingerprint(self, tmp_path):
        index = CorpusIndex(build_documents())
        path = index.save(tmp_path / "index.json")
        assert corpus_index_fingerprint(path) == index.fingerprint()

    def test_any_single_document_mutation_changes_the_fingerprint(self):
        documents = build_documents(count=8)
        baseline = CorpusIndex(documents).fingerprint()
        for position in range(len(documents)):
            mutated = list(documents)
            original = mutated[position]
            mutated[position] = CorpusDocument(
                doc_id=original.doc_id,
                title=original.title + " tampered",
                chart=original.chart,
                schema=original.schema,
                table=original.table,
            )
            assert CorpusIndex(mutated).fingerprint() != baseline
        # order is content too: a reordered corpus is a different artifact
        assert CorpusIndex(list(reversed(documents))).fingerprint() != baseline

    def test_tampered_file_changes_the_on_disk_hash(self, tmp_path):
        index = CorpusIndex(build_documents(count=5))
        path = index.save(tmp_path / "index.json")
        recorded = corpus_index_fingerprint(path)
        tampered = path.read_text(encoding="utf-8").replace("revenue", "revenues", 1)
        path.write_text(tampered, encoding="utf-8")
        assert corpus_index_fingerprint(path) != recorded


class TestStrictness:
    def test_duplicate_doc_ids_are_rejected(self):
        document = CorpusDocument(doc_id="dup", title="a title")
        with pytest.raises(ModelConfigError, match="duplicate doc_id"):
            CorpusIndex([document, document])

    def test_search_requires_a_positive_top_k(self):
        index = CorpusIndex(build_documents(count=3))
        with pytest.raises(ModelConfigError, match="top_k"):
            index.search("anything", top_k=0)

    def test_unknown_doc_id_raises(self):
        index = CorpusIndex(build_documents(count=3))
        with pytest.raises(ModelConfigError, match="unknown doc_id"):
            index.get("doc-999")

    def test_loading_a_non_index_file_raises(self, tmp_path):
        path = tmp_path / "not-an-index.json"
        path.write_text('{"format": "something-else", "documents": []}', encoding="utf-8")
        with pytest.raises(ModelConfigError):
            CorpusIndex.load(path)
        with pytest.raises(ModelConfigError, match="no corpus index"):
            CorpusIndex.load(tmp_path / "missing.json")
