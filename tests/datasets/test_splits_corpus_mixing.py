"""Tests for cross-domain splitting, the pre-training corpus and temperature mixing."""

import pytest

from repro.datasets import (
    build_pretraining_corpus,
    cross_domain_split,
    generate_chart2text,
    generate_fevisqa,
    generate_nvbench,
    generate_wikitabletext,
    temperature_mixing_weights,
    TemperatureMixedSampler,
)
from repro.datasets.splits import instance_split
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def nvbench(small_pool):
    return generate_nvbench(small_pool, examples_per_database=8, seed=0)


class TestCrossDomainSplit:
    def test_databases_do_not_leak_between_splits(self, nvbench):
        splits = cross_domain_split(nvbench.examples, seed=0)
        train_dbs = {e.db_id for e in splits.train}
        valid_dbs = {e.db_id for e in splits.valid}
        test_dbs = {e.db_id for e in splits.test}
        assert not (train_dbs & valid_dbs)
        assert not (train_dbs & test_dbs)
        assert not (valid_dbs & test_dbs)

    def test_all_examples_kept(self, nvbench):
        splits = cross_domain_split(nvbench.examples, seed=0)
        assert len(splits.all_examples()) == len(nvbench.examples)

    def test_fractions_roughly_respected(self, nvbench):
        splits = cross_domain_split(nvbench.examples, train_fraction=0.7, valid_fraction=0.1, seed=0)
        databases = len({e.db_id for e in nvbench.examples})
        train_dbs = len({e.db_id for e in splits.train})
        assert train_dbs >= databases // 2

    def test_invalid_fractions(self, nvbench):
        with pytest.raises(DatasetError):
            cross_domain_split(nvbench.examples, train_fraction=0.9, valid_fraction=0.3)

    def test_requires_db_id(self):
        with pytest.raises(DatasetError):
            cross_domain_split(["just", "strings"])

    def test_instance_split_sizes(self):
        splits = instance_split(list(range(100)), seed=0)
        assert splits.sizes() == {"train": 70, "valid": 10, "test": 20}


class TestPretrainingCorpus:
    def test_contains_all_four_mappings(self, nvbench, small_pool):
        splits = cross_domain_split(nvbench.examples, seed=0)
        chart2text = generate_chart2text(20, seed=0)
        wikitabletext = generate_wikitabletext(20, seed=0)
        fevisqa = generate_fevisqa(nvbench, seed=0)
        corpus = build_pretraining_corpus(
            splits.train, chart2text.examples, wikitabletext.examples, fevisqa.examples[:50], small_pool
        )
        by_task = corpus.statistics()["bdc_by_task"]
        assert set(by_task) == {"text_to_vis", "vis_to_text", "table_to_text", "fevisqa"}
        assert corpus.mlm_texts
        assert all(text.strip() for text in corpus.all_texts())

    def test_large_tables_filtered(self, nvbench, small_pool):
        chart2text = generate_chart2text(60, seed=1, large_table_fraction=0.5)
        corpus = build_pretraining_corpus([], chart2text.examples, [], [], small_pool, max_table_cells=150)
        assert len(corpus.bdc_pairs) == sum(1 for e in chart2text.examples if e.num_cells <= 150)

    def test_swapped_pair(self, nvbench, small_pool):
        splits = cross_domain_split(nvbench.examples, seed=0)
        corpus = build_pretraining_corpus(splits.train[:3], [], [], [], small_pool)
        pair = corpus.bdc_pairs[0]
        swapped = pair.swapped()
        assert swapped.source == pair.target and swapped.target == pair.source


class TestTemperatureMixing:
    def test_weights_flatten_with_temperature(self):
        sizes = {"big": 1000, "small": 10}
        proportional = temperature_mixing_weights(sizes, temperature=1.0)
        flattened = temperature_mixing_weights(sizes, temperature=2.0)
        assert flattened["small"] > proportional["small"]
        assert abs(sum(flattened.values()) - 1.0) < 1e-9

    def test_zero_sized_task_gets_zero_weight(self):
        weights = temperature_mixing_weights({"a": 10, "b": 0})
        assert weights["b"] == 0.0

    def test_invalid_temperature(self):
        with pytest.raises(DatasetError):
            temperature_mixing_weights({"a": 1}, temperature=0)

    def test_sampler_upsamples_small_task(self):
        sampler = TemperatureMixedSampler({"big": list(range(1000)), "small": list(range(10))}, temperature=2.0, seed=0)
        draws = [sampler.sample()[0] for _ in range(500)]
        small_share = draws.count("small") / len(draws)
        assert small_share > 10 / 1010 * 2  # clearly more than proportional

    def test_sampler_epoch_size(self):
        sampler = TemperatureMixedSampler({"a": [1, 2, 3], "b": [4, 5]}, seed=0)
        assert len(sampler.epoch(17)) == 17
