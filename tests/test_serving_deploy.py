"""Tests for the Server's deployment lifecycle (``repro.deploy`` + server).

The headline properties: a hot-swap under concurrent traffic drops nothing
and keeps incumbent responses bitwise-identical; canary routing is
deterministic per request key; response caches are namespaced per
deployment identity (and weight revision) so versions never answer for each
other; shadow traffic records agreement without ever touching the caller's
response; and a forced-unhealthy canary auto-reverts.  Backends are fast
rule-based baselines so the suite exercises scheduling, not matrix math.
"""

from __future__ import annotations

import asyncio
import time

import pytest

import repro
from repro.baselines import GENERATION_BASELINES
from repro.datasets import generate_nvbench
from repro.deploy import DeploymentManifest
from repro.errors import ModelConfigError
from repro.serving import (
    DEFAULT_DEPLOYMENT,
    ERROR_BACKEND,
    ERROR_INVALID_REQUEST,
    Pipeline,
    Request,
    Server,
    ServerConfig,
)


# -- fixtures and helpers ----------------------------------------------------------------


@pytest.fixture(scope="module")
def nvbench(small_pool):
    return generate_nvbench(small_pool, examples_per_database=6, seed=0)


class _TaggedCaption(GENERATION_BASELINES["heuristics"]):
    """A heuristics captioner whose outputs carry a version marker."""

    def __init__(self, tag: str):
        super().__init__()
        self.tag = tag

    def predict_many(self, sources):
        return [f"{output} [{self.tag}]" for output in super().predict_many(sources)]


class _SlowCaption(GENERATION_BASELINES["heuristics"]):
    """A captioner that burns wall-clock per batch (worker-side)."""

    def __init__(self, delay: float = 0.03):
        super().__init__()
        self.delay = delay

    def predict_many(self, sources):
        time.sleep(self.delay)
        return super().predict_many(sources)


class _ExplodingCaption(GENERATION_BASELINES["heuristics"]):
    def predict_many(self, sources):
        raise ModelConfigError("canary exploded")


def _primary() -> Pipeline:
    backend = GENERATION_BASELINES["heuristics"]()
    return Pipeline(vis_to_text=backend, fevisqa=backend)


def _candidate(backend) -> Pipeline:
    return Pipeline(vis_to_text=backend, fevisqa=backend)


def _chart_requests(nvbench, count: int) -> list[Request]:
    """``count`` unique vis_to_text requests over the nvbench charts."""
    examples = nvbench.examples
    return [
        Request(task="vis_to_text", chart=examples[index % len(examples)].query, request_id=f"r{index}")
        for index in range(min(count, len(examples)))
    ]


def _question_requests(count: int, chart, salt: str = "") -> list[Request]:
    """``count`` unique fevisqa requests (distinct questions, shared chart)."""
    return [
        Request(task="fevisqa", question=f"how many {salt} parts in group {index} ?", chart=chart)
        for index in range(count)
    ]


def _run(coro):
    return asyncio.run(coro)


# -- routing -----------------------------------------------------------------------------


class TestDeployRouting:
    def test_routed_traffic_lands_on_the_deployed_version(self, nvbench):
        requests = _chart_requests(nvbench, 12)

        async def drive():
            async with Server(_primary(), ServerConfig(max_batch=4)) as server:
                await server.deploy("captioner@2", _candidate(_TaggedCaption("v2")))
                server.set_routes("vis_to_text", {"captioner@2": 1.0})
                responses = await server.submit_all(requests)
            return responses, server.stats()

        responses, stats = _run(drive())
        assert all(response.ok for response in responses)
        assert all(response.output.endswith("[v2]") for response in responses)
        assert all(response.telemetry["deployment"] == "captioner@2" for response in responses)
        deployed = stats["deployments"]["captioner@2"]["requests"]
        assert deployed["routed"] == len(requests)
        assert deployed["completed"] == len(requests)

    def test_unrouted_tasks_stay_on_the_primary(self, nvbench):
        chart = nvbench.examples[0].query

        async def drive():
            async with Server(_primary()) as server:
                await server.deploy("captioner@2", _candidate(_TaggedCaption("v2")))
                server.set_routes("vis_to_text", {"captioner@2": 1.0})
                return await server.submit(Request(task="fevisqa", question="how many ?", chart=chart))

        response = _run(drive())
        assert response.ok
        assert response.telemetry["deployment"] == DEFAULT_DEPLOYMENT
        assert "[v2]" not in response.output

    def test_pinned_requests_bypass_the_canary_split(self, nvbench):
        chart = nvbench.examples[0].query

        async def drive():
            async with Server(_primary()) as server:
                await server.deploy("captioner@2", _candidate(_TaggedCaption("v2")))
                # no routes at all: only the pin reaches the candidate
                pinned = await server.submit(
                    Request(task="vis_to_text", chart=chart, deployment="captioner@2")
                )
                unpinned = await server.submit(Request(task="vis_to_text", chart=chart))
                unknown = await server.submit(
                    Request(task="vis_to_text", chart=chart, deployment="ghost@9")
                )
            return pinned, unpinned, unknown

        pinned, unpinned, unknown = _run(drive())
        assert pinned.ok and pinned.output.endswith("[v2]")
        assert pinned.telemetry["deployment"] == "captioner@2"
        assert unpinned.ok and not unpinned.output.endswith("[v2]")
        assert unknown.error == ERROR_INVALID_REQUEST
        assert "ghost@9" in unknown.detail

    def test_canary_split_is_deterministic_per_request_key(self, nvbench):
        requests = _question_requests(40, nvbench.examples[0].query)

        async def drive():
            async with Server(_primary(), ServerConfig(max_batch=4)) as server:
                await server.deploy("candidate@1", _candidate(_TaggedCaption("v2")))
                server.set_canary("fevisqa", DEFAULT_DEPLOYMENT, "candidate@1", 0.5)
                first = await server.submit_all(requests)
                second = await server.submit_all(requests)  # the retries
            return first, second

        first, second = _run(drive())
        assignments = [response.telemetry["deployment"] for response in first]
        assert set(assignments) == {DEFAULT_DEPLOYMENT, "candidate@1"}  # both sides got traffic
        # every retry lands on the version that served it the first time
        assert [response.telemetry["deployment"] for response in second] == assignments
        assert all(response.telemetry["cache_hit"] for response in second)

    def test_response_caches_are_namespaced_per_deployment(self, nvbench):
        request = Request(task="vis_to_text", chart=nvbench.examples[0].query)

        async def drive():
            async with Server(_primary()) as server:
                incumbent = await server.submit(request)
                await server.deploy("captioner@2", _candidate(_TaggedCaption("v2")))
                server.set_routes("vis_to_text", {"captioner@2": 1.0})
                candidate = await server.submit(request)
                server.clear_routes("vis_to_text")
                replay = await server.submit(request)
            return incumbent, candidate, replay

        incumbent, candidate, replay = _run(drive())
        # the candidate neither replays the incumbent's cached output...
        assert not candidate.cached
        assert candidate.output.endswith("[v2]")
        # ...nor poisons the incumbent's cache entry
        assert replay.cached
        assert replay.output == incumbent.output

    def test_route_validation(self, nvbench):
        async def drive():
            async with Server(_primary()) as server:
                with pytest.raises(ModelConfigError, match="unknown deployment"):
                    server.set_routes("vis_to_text", {"ghost@1": 1.0})
                with pytest.raises(ModelConfigError, match="unknown task"):
                    server.set_routes("table_to_text", {DEFAULT_DEPLOYMENT: 1.0})
                with pytest.raises(ModelConfigError, match="no backend configured"):
                    server.set_routes("text_to_vis", {DEFAULT_DEPLOYMENT: 1.0})
                await server.deploy("captioner@2", Pipeline(vis_to_text=_TaggedCaption("v2")))
                with pytest.raises(ModelConfigError, match="does not serve"):
                    server.set_routes("fevisqa", {"captioner@2": 1.0})

        _run(drive())

    def test_deploy_validation(self, nvbench):
        async def drive():
            async with Server(_primary()) as server:
                with pytest.raises(ModelConfigError, match="versioned"):
                    await server.deploy("unversioned", _candidate(_TaggedCaption("x")))
                await server.deploy("captioner@2", _candidate(_TaggedCaption("x")))
                with pytest.raises(ModelConfigError, match="already deployed"):
                    await server.deploy("captioner@2", _candidate(_TaggedCaption("x")))
                with pytest.raises(ModelConfigError, match="does not match"):
                    await server.deploy(
                        "captioner@3",
                        _candidate(_TaggedCaption("x")),
                        manifest=DeploymentManifest(
                            name="captioner", version=4, tasks=("vis_to_text",),
                            backends={"vis_to_text": {"type": "heuristics"}},
                        ),
                    )
                with pytest.raises(ModelConfigError, match="cannot be undeployed"):
                    await server.undeploy(DEFAULT_DEPLOYMENT)

        _run(drive())

    def test_manifest_is_echoed_in_stats(self, nvbench):
        manifest = DeploymentManifest(
            name="captioner",
            version=2,
            tasks=("vis_to_text",),
            backends={"vis_to_text": {"type": "heuristics"}},
        )

        async def drive():
            async with Server(_primary()) as server:
                await server.deploy("captioner@2", Pipeline(vis_to_text=_TaggedCaption("v2")), manifest=manifest)
                return server.stats()

        stats = _run(drive())
        assert stats["deployments"]["captioner@2"]["manifest"] == manifest.as_dict()
        assert stats["version"] == repro.__version__


# -- hot swap and drain ------------------------------------------------------------------


class TestHotSwap:
    def test_hot_swap_under_concurrent_load_drops_nothing(self, nvbench):
        requests = _question_requests(60, nvbench.examples[0].query)

        async def drive():
            server = Server(_primary(), ServerConfig(max_batch=4, queue_size=256))
            async with server:
                pending = [asyncio.create_task(server.submit(request)) for request in requests[:30]]
                await asyncio.sleep(0)  # let the first wave start queueing
                swap_seconds = await server.hot_swap("incumbent@2", _primary())
                pending += [asyncio.create_task(server.submit(request)) for request in requests[30:]]
                responses = await asyncio.gather(*pending)
            return responses, swap_seconds, server.stats()

        responses, swap_seconds, stats = _run(drive())
        # zero dropped, zero errored
        assert len(responses) == len(requests)
        assert all(response.ok for response in responses)
        # weight-identical versions: outputs bitwise-equal across the flip
        sync = _primary().serve(requests)
        assert [response.output for response in responses] == [response.output for response in sync]
        # traffic actually flipped
        served_by = {response.telemetry["deployment"] for response in responses}
        assert "incumbent@2" in served_by
        assert swap_seconds >= 0.0
        assert stats["routes"]["fevisqa"]["weights"] == {"incumbent@2": 1.0}

    def test_post_swap_traffic_lands_on_the_new_version(self, nvbench):
        chart = nvbench.examples[0].query

        async def drive():
            async with Server(_primary()) as server:
                await server.hot_swap("tagged@2", _candidate(_TaggedCaption("v2")))
                return await server.submit(Request(task="vis_to_text", chart=chart))

        response = _run(drive())
        assert response.ok
        assert response.telemetry["deployment"] == "tagged@2"
        assert response.output.endswith("[v2]")

    def test_undeploy_drains_inflight_work(self, nvbench):
        requests = _question_requests(10, nvbench.examples[0].query)

        async def drive():
            config = ServerConfig(max_batch=2, max_wait_ms=0.0, queue_size=64, num_workers=1)
            async with Server(_primary(), config) as server:
                await server.deploy("slow@1", _candidate(_SlowCaption(0.02)))
                server.set_routes("fevisqa", {"slow@1": 1.0})
                pending = [asyncio.create_task(server.submit(request)) for request in requests]
                await asyncio.sleep(0.01)  # some batches reach the worker
                await server.undeploy("slow@1")
                responses = await asyncio.gather(*pending)
                after = await server.submit(
                    Request(task="fevisqa", question="after the drain ?", chart=requests[0].chart)
                )
            return responses, after, server.stats()

        responses, after, stats = _run(drive())
        # every request admitted before the undeploy was answered, none dropped
        assert all(response.ok for response in responses)
        assert all(response.telemetry["deployment"] == "slow@1" for response in responses)
        # the version is gone and traffic is back on the primary
        assert "slow@1" not in stats["deployments"]
        assert after.ok and after.telemetry["deployment"] == DEFAULT_DEPLOYMENT

    def test_set_weights_bumps_revision_and_renamespaces_the_cache(self, nvbench):
        request = Request(task="vis_to_text", chart=nvbench.examples[0].query)

        async def drive():
            async with Server(_primary()) as server:
                first = await server.submit(request)
                warmed = await server.submit(request)
                await server.set_weights(DEFAULT_DEPLOYMENT, _candidate(_TaggedCaption("v2")))
                swapped = await server.submit(request)
                swapped_again = await server.submit(request)
            return first, warmed, swapped, swapped_again, server.stats()

        first, warmed, swapped, swapped_again, stats = _run(drive())
        assert not first.cached and warmed.cached
        # new weights, new namespace: the old entry is not replayed...
        assert not swapped.cached
        assert swapped.output.endswith("[v2]")
        # ...and the new revision caches independently
        assert swapped_again.cached and swapped_again.output == swapped.output
        assert stats["deployments"][DEFAULT_DEPLOYMENT]["revision"] == 1

    def test_queued_job_never_caches_under_the_old_revision_namespace(self, nvbench):
        # A request admitted at revision 0 that out-waits a set_weights() is
        # answered (possibly by the new weights) but must not write the
        # response cache: its key is the bare revision-0 namespace shared
        # with synchronous pipeline callers, and a new-weight output there
        # would poison them.
        blocker = Request(task="vis_to_text", chart=nvbench.examples[0].query)
        victim = Request(task="vis_to_text", chart=nvbench.examples[1].query)
        pipeline = Pipeline(vis_to_text=_SlowCaption(0.05))

        async def drive():
            config = ServerConfig(max_batch=1, max_wait_ms=0.0, num_workers=1)
            async with Server(pipeline, config) as server:
                blocking = asyncio.create_task(server.submit(blocker))
                await asyncio.sleep(0.01)  # blocker occupies the only worker
                victim_task = asyncio.create_task(server.submit(victim))
                await asyncio.sleep(0.01)  # victim is queued, not yet dispatched
                await server.set_weights(DEFAULT_DEPLOYMENT, _candidate(_TaggedCaption("v2")))
                return await asyncio.gather(blocking, victim_task)

        responses = _run(drive())
        assert all(response.ok for response in responses)
        # the shared revision-0 cache entry was never written: a synchronous
        # caller on the same pipeline computes fresh, with the old backend
        replay = pipeline.submit(victim)
        assert not replay.cached
        assert not replay.output.endswith("[v2]")

    def test_set_weights_must_keep_the_task_surface(self, nvbench):
        async def drive():
            async with Server(_primary()) as server:
                with pytest.raises(ModelConfigError, match="drop served tasks"):
                    await server.set_weights(DEFAULT_DEPLOYMENT, Pipeline(vis_to_text=_TaggedCaption("x")))

        _run(drive())


# -- shadow traffic ----------------------------------------------------------------------


class TestShadowTraffic:
    def test_shadow_records_agreement_without_touching_responses(self, nvbench):
        requests = _question_requests(16, nvbench.examples[0].query)

        async def drive():
            async with Server(_primary(), ServerConfig(max_batch=4)) as server:
                await server.deploy("candidate@1", _primary())
                server.set_shadow("fevisqa", "candidate@1", 1.0)
                responses = await server.submit_all(requests)
            return responses, server.stats()

        responses, stats = _run(drive())
        assert all(response.ok for response in responses)
        assert all(response.telemetry["deployment"] == DEFAULT_DEPLOYMENT for response in responses)
        bucket = stats["shadow"][f"{DEFAULT_DEPLOYMENT}->candidate@1"]
        assert bucket["samples"] == len(requests)
        assert bucket["agreement_rate"] == 1.0  # weight-identical candidate
        assert stats["deployments"]["candidate@1"]["requests"]["shadow_requests"] == len(requests)

    def test_shadow_disagreement_is_measured(self, nvbench):
        requests = _question_requests(8, nvbench.examples[0].query, salt="divergent")

        async def drive():
            async with Server(_primary()) as server:
                await server.deploy("candidate@1", _candidate(_TaggedCaption("v2")))
                server.set_shadow("fevisqa", "candidate@1", 1.0)
                responses = await server.submit_all(requests)
            return responses, server.stats()

        responses, stats = _run(drive())
        assert all(not response.output.endswith("[v2]") for response in responses)
        bucket = stats["shadow"][f"{DEFAULT_DEPLOYMENT}->candidate@1"]
        assert bucket["samples"] == len(requests)
        assert bucket["agreement_rate"] == 0.0

    def test_exploding_shadow_never_affects_the_caller(self, nvbench):
        requests = _question_requests(6, nvbench.examples[0].query, salt="explosive")

        async def drive():
            async with Server(_primary()) as server:
                await server.deploy("candidate@1", _candidate(_ExplodingCaption()))
                server.set_shadow("fevisqa", "candidate@1", 1.0)
                responses = await server.submit_all(requests)
            return responses, server.stats()

        responses, stats = _run(drive())
        assert all(response.ok for response in responses)
        bucket = stats["shadow"][f"{DEFAULT_DEPLOYMENT}->candidate@1"]
        assert bucket["shadow_errors"] == len(requests)
        assert bucket["primary_errors"] == 0  # the incumbent never failed
        assert bucket["samples"] == 0


# -- canary health gating ----------------------------------------------------------------


class TestCanaryAutoRevert:
    def test_forced_unhealthy_canary_auto_reverts(self, nvbench):
        chart = nvbench.examples[0].query
        requests = _question_requests(30, chart, salt="unhealthy")

        async def drive():
            async with Server(_primary(), ServerConfig(max_batch=2)) as server:
                await server.deploy("broken@1", _candidate(_ExplodingCaption()))
                server.set_canary(
                    "fevisqa", DEFAULT_DEPLOYMENT, "broken@1", 0.5,
                    max_error_rate=0.2, min_requests=3,
                )
                during = await server.submit_all(requests)
                aftermath = await server.submit_all(
                    _question_requests(10, chart, salt="post-revert")
                )
            return during, aftermath, server.stats()

        during, aftermath, stats = _run(drive())
        # the canary really was unhealthy: its share of the split errored
        assert any(response.error == ERROR_BACKEND for response in during)
        # the guard fired: the canary is out of every route...
        assert stats["routes"].get("fevisqa", {}).get("weights", {}).get("broken@1") is None
        rollbacks = stats["rollbacks"]
        assert len(rollbacks) == 1
        assert rollbacks[0]["deployment"] == "broken@1"
        assert rollbacks[0]["error_rate"] > 0.2
        # ...and the task is healthy again on the stable version
        assert all(response.ok for response in aftermath)
        assert all(
            response.telemetry["deployment"] == DEFAULT_DEPLOYMENT for response in aftermath
        )

    def test_guard_judges_only_traffic_since_install(self, nvbench):
        # A deployment with an ugly history (here: every request errored)
        # that has since been fixed must not be insta-reverted by its old
        # counters when it is later promoted to a guarded canary.
        chart = nvbench.examples[0].query

        async def drive():
            async with Server(_primary(), ServerConfig(max_batch=2)) as server:
                await server.deploy("flaky@1", _candidate(_ExplodingCaption()))
                server.set_routes("fevisqa", {"flaky@1": 1.0})
                history = await server.submit_all(_question_requests(8, chart, salt="dark-past"))
                server.clear_routes("fevisqa")
                await server.set_weights("flaky@1", _primary())  # fixed build
                server.set_canary(
                    "fevisqa", DEFAULT_DEPLOYMENT, "flaky@1", 0.5,
                    max_error_rate=0.2, min_requests=3,
                )
                redemption = await server.submit_all(
                    _question_requests(20, chart, salt="clean-present")
                )
            return history, redemption, server.stats()

        history, redemption, stats = _run(drive())
        assert all(response.error == ERROR_BACKEND for response in history)
        assert all(response.ok for response in redemption)
        assert stats["rollbacks"] == []  # the past is not held against it
        assert "flaky@1" in stats["routes"]["fevisqa"]["weights"]

    def test_guard_is_dropped_when_routes_move_on(self, nvbench):
        async def drive():
            async with Server(_primary()) as server:
                await server.deploy("candidate@1", _primary())
                server.set_canary(
                    "fevisqa", DEFAULT_DEPLOYMENT, "candidate@1", 0.5,
                    max_error_rate=0.2, min_requests=3,
                )
                assert "candidate@1" in server._guards
                server.clear_routes("fevisqa")
                return dict(server._guards)

        assert _run(drive()) == {}

    def test_healthy_canary_is_left_alone(self, nvbench):
        requests = _question_requests(20, nvbench.examples[0].query, salt="healthy")

        async def drive():
            async with Server(_primary()) as server:
                await server.deploy("fine@1", _primary())
                server.set_canary(
                    "fevisqa", DEFAULT_DEPLOYMENT, "fine@1", 0.5,
                    max_error_rate=0.2, min_requests=3,
                )
                responses = await server.submit_all(requests)
            return responses, server.stats()

        responses, stats = _run(drive())
        assert all(response.ok for response in responses)
        assert stats["rollbacks"] == []
        assert "fine@1" in stats["routes"]["fevisqa"]["weights"]


# -- observability -----------------------------------------------------------------------


class TestStatsSnapshot:
    def test_stats_snapshot_is_deep_copied(self, nvbench):
        request = Request(task="vis_to_text", chart=nvbench.examples[0].query)

        async def drive():
            async with Server(_primary()) as server:
                await server.submit(request)
                snapshot = server.stats()
                # vandalize every level of the returned structure
                snapshot["requests"]["submitted"] = -999
                snapshot["requests"]["rejected"]["queue_full"] = -999
                snapshot["batches"]["per_worker"].clear()
                snapshot["deployments"][DEFAULT_DEPLOYMENT]["requests"]["routed"] = -999
                snapshot["pipeline"]["caches"]["response"]["hits"] = -999
                snapshot["rollbacks"].append({"fake": True})
                return server.stats()

        fresh = _run(drive())
        assert fresh["requests"]["submitted"] == 1
        assert fresh["requests"]["rejected"]["queue_full"] == 0
        assert fresh["deployments"][DEFAULT_DEPLOYMENT]["requests"]["routed"] == 1
        assert fresh["rollbacks"] == []

    def test_per_deployment_accounting_is_consistent(self, nvbench):
        requests = _question_requests(12, nvbench.examples[0].query, salt="ledger")

        async def drive():
            async with Server(_primary(), ServerConfig(max_batch=4)) as server:
                await server.deploy("candidate@1", _primary())
                server.set_canary("fevisqa", DEFAULT_DEPLOYMENT, "candidate@1", 0.4)
                await server.submit_all(requests)
                await server.submit_all(requests)  # cache-hit round
            return server.stats()

        stats = _run(drive())
        totals = {"routed": 0, "completed": 0, "cache_hits": 0}
        for entry in stats["deployments"].values():
            for key in totals:
                totals[key] += entry["requests"][key]
        assert totals["routed"] == len(requests)
        assert totals["completed"] == len(requests)
        assert totals["cache_hits"] == len(requests)
