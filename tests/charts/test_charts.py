"""Tests for chart building, DVL translation, chart properties and rendering."""

import pytest

from repro.charts import build_chart, chart_properties, render_ascii_chart, render_table, to_vega_lite, to_vega_zero
from repro.database import execute_query
from repro.errors import ExecutionError
from repro.vql import ChartType, parse_dv_query


@pytest.fixture(scope="module")
def pie_chart(gallery_database, pie_query_text):
    # module-scoped charts are recomputed per module because fixtures from conftest are session scoped
    query = parse_dv_query(pie_query_text)
    return build_chart(query, gallery_database)


class TestBuildChart:
    def test_labels_and_values(self, pie_chart):
        assert pie_chart.chart_type is ChartType.PIE
        assert pie_chart.x_label == "artist.country"
        assert len(pie_chart) == 3
        assert set(pie_chart.x_values) == {"Fiji", "United States", "Zimbabwe"}

    def test_from_precomputed_result(self, gallery_database, pie_query_text):
        query = parse_dv_query(pie_query_text)
        result = execute_query(query, gallery_database)
        chart = build_chart(query, result=result)
        assert chart.y_values == result.column_values(1)

    def test_needs_database_or_result(self, pie_query_text):
        with pytest.raises(ExecutionError):
            build_chart(parse_dv_query(pie_query_text))

    def test_numeric_y_skips_bad_values(self, pie_chart):
        assert pie_chart.numeric_y() == [1.0, 5.0, 1.0]

    def test_to_dict(self, pie_chart):
        payload = pie_chart.to_dict()
        assert payload["chart_type"] == "pie"
        assert len(payload["x_values"]) == 3


class TestVegaTranslation:
    def test_pie_uses_theta_and_color(self, gallery_database, pie_query_text):
        spec = to_vega_lite(parse_dv_query(pie_query_text))
        assert spec["mark"] == "arc"
        assert "theta" in spec["encoding"] and "color" in spec["encoding"]

    def test_bar_encodes_x_y_and_transforms(self):
        query = parse_dv_query(
            "visualize bar select t.a , count ( t.a ) from t where t.b = 'x' group by t.a order by t.a desc"
        )
        spec = to_vega_lite(query)
        assert spec["mark"] == "bar"
        assert spec["encoding"]["y"]["aggregate"] == "count"
        assert any("filter" in transform for transform in spec["transform"])
        assert spec["encoding"]["x"]["sort"] == "descending"

    def test_vega_zero_contains_mark_and_axes(self, pie_query_text):
        sequence = to_vega_zero(parse_dv_query(pie_query_text))
        assert sequence.startswith("mark arc data artist")
        assert "encoding x artist.country" in sequence


class TestChartProperties:
    def test_basic_properties(self, pie_chart):
        properties = chart_properties(pie_chart)
        assert properties.num_parts == 3
        assert properties.max_value == 5
        assert properties.min_value == 1
        assert properties.total == 7
        assert properties.has_duplicate_values is True
        assert properties.x_of_max == "United States"

    def test_empty_chart(self):
        from repro.charts.chart import ChartData

        empty = ChartData(ChartType.BAR, "x", "y", [], [])
        properties = chart_properties(empty)
        assert properties.num_parts == 0
        assert properties.max_value is None


class TestRendering:
    def test_bar_render_contains_labels(self, gallery_database, pie_query_text):
        query = parse_dv_query(pie_query_text.replace("pie", "bar"))
        chart = build_chart(query, gallery_database)
        rendered = render_ascii_chart(chart)
        assert "United States" in rendered and "#" in rendered

    def test_pie_render_shows_percentages(self, pie_chart):
        rendered = render_ascii_chart(pie_chart)
        assert "%" in rendered

    def test_scatter_render(self, gallery_database):
        query = parse_dv_query("visualize scatter select artist.age , artist.year_join from artist")
        chart = build_chart(query, gallery_database)
        rendered = render_ascii_chart(chart)
        assert "x" in rendered

    def test_empty_chart_render(self):
        from repro.charts.chart import ChartData

        rendered = render_ascii_chart(ChartData(ChartType.BAR, "x", "y", [], []))
        assert "no data" in rendered

    def test_render_table(self, gallery_database, pie_query_text):
        result = execute_query(parse_dv_query(pie_query_text), gallery_database)
        rendered = render_table(result, max_rows=2, title="demo")
        assert "demo" in rendered
        assert "more rows" in rendered
