"""FeVisQA assistant: free-form question answering over a data visualization.

Builds the paper's Figure 1 / Figure 8 scenario: given a DV query, its
database and a rendered chart, answer the four typical DV questions (meaning,
suitability, structure, values).  Ground-truth answers come from executing
the query; the ``repro.serving`` pipeline answers the same questions with its
zero-shot backend — all four submitted as one burst so the micro-batcher
groups them into a single batch.

Run with::

    python examples/fevisqa_assistant.py
"""

from __future__ import annotations

from repro.charts import build_chart, chart_properties
from repro.database import execute_query
from repro.datasets import build_database_pool
from repro.encoding import encode_result_table, encode_schema
from repro.serving import Pipeline, Request
from repro.vql import parse_dv_query, standardize_dv_query
from repro.vql.validation import is_query_compatible


def main() -> None:
    pool = build_database_pool(seed=0)
    database = pool.get("film_rank")
    query = standardize_dv_query(
        parse_dv_query(
            "visualize bar select film_market_estimation.type, count(film_market_estimation.type) "
            "from film_market_estimation join film on film_market_estimation.film_id = film.film_id "
            "group by film_market_estimation.type order by film_market_estimation.type asc"
        ),
        schema=database.schema,
    )

    result = execute_query(query, database)
    chart = build_chart(query, result=result)
    properties = chart_properties(chart)
    table_text = encode_result_table(result)

    pipeline = Pipeline.from_config(
        {"fevisqa": {"type": "heuristics"}, "pipeline": {"max_batch_size": 4}}
    )

    print("== DV query ==")
    print(query.to_text())
    print("\n== chart ==")
    print(pipeline.render_chart(chart))

    questions = [
        ("What is the meaning of this DV ?", "semantic"),
        ("Is this DV suitable for this given dataset ?", "suitability"),
        ("How many parts are there in the chart ?", "structure"),
        ("What is the value of the largest part in the chart ?", "value"),
    ]
    ground_truth = {
        "semantic": "a bar chart counting film market estimations for each estimation type",
        "suitability": "Yes" if is_query_compatible(query, database.schema) else "No",
        "structure": str(properties.num_parts),
        "value": str(properties.max_value),
    }

    print("\n== question answering (one micro-batched burst) ==")
    requests = [
        Request(task="fevisqa", question=question, chart=query, schema=database.schema, table=table_text, request_id=kind)
        for question, kind in questions
    ]
    responses = pipeline.serve(requests)
    for (question, kind), response in zip(questions, responses):
        print(f"\nQ: {question}")
        print(f"   ground truth     : {ground_truth[kind]}")
        print(f"   zero-shot answer : {response.output}")

    print("\n== serving statistics ==")
    print(f"batching: {pipeline.stats()['batching']['fevisqa']}")
    repeat = pipeline.fevisqa(questions[0][0], chart=query, schema=database.schema, table=table_text)
    print(f"repeat of question 1 cached: {repeat.cached}")

    print("\n== schema used as context ==")
    print(encode_schema(database.schema))


if __name__ == "__main__":
    main()
