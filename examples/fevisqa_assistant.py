"""FeVisQA assistant: free-form question answering over a data visualization.

Builds the paper's Figure 1 / Figure 8 scenario: given a DV query, its
database and a rendered chart, answer the four typical DV questions (meaning,
suitability, structure, values).  Ground-truth answers come from executing
the query; a zero-shot heuristic model and (optionally) a trained DataVisT5
answer the same questions for comparison.

Run with::

    python examples/fevisqa_assistant.py
"""

from __future__ import annotations

from repro.baselines import ZeroShotHeuristicGeneration
from repro.charts import build_chart, chart_properties, render_ascii_chart
from repro.database import execute_query
from repro.datasets import build_database_pool
from repro.encoding import encode_result_table, encode_schema, fevisqa_input
from repro.vql import parse_dv_query, standardize_dv_query
from repro.vql.validation import is_query_compatible


def main() -> None:
    pool = build_database_pool(seed=0)
    database = pool.get("film_rank")
    query = standardize_dv_query(
        parse_dv_query(
            "visualize bar select film_market_estimation.type, count(film_market_estimation.type) "
            "from film_market_estimation join film on film_market_estimation.film_id = film.film_id "
            "group by film_market_estimation.type order by film_market_estimation.type asc"
        ),
        schema=database.schema,
    )

    result = execute_query(query, database)
    chart = build_chart(query, result=result)
    properties = chart_properties(chart)
    table_text = encode_result_table(result)

    print("== DV query ==")
    print(query.to_text())
    print("\n== chart ==")
    print(render_ascii_chart(chart))

    questions = [
        ("What is the meaning of this DV ?", "semantic"),
        ("Is this DV suitable for this given dataset ?", "suitability"),
        ("How many parts are there in the chart ?", "structure"),
        ("What is the value of the largest part in the chart ?", "value"),
    ]
    ground_truth = {
        "semantic": "a bar chart counting film market estimations for each estimation type",
        "suitability": "Yes" if is_query_compatible(query, database.schema) else "No",
        "structure": str(properties.num_parts),
        "value": str(properties.max_value),
    }

    heuristic = ZeroShotHeuristicGeneration()

    print("\n== question answering ==")
    for question, kind in questions:
        source = fevisqa_input(question, query=query, schema=database.schema, table=table_text)
        predicted = heuristic.predict(source)
        print(f"\nQ: {question}")
        print(f"   ground truth     : {ground_truth[kind]}")
        print(f"   zero-shot answer : {predicted}")

    print("\n== schema used as context ==")
    print(encode_schema(database.schema))


if __name__ == "__main__":
    main()
