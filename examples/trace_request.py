"""Trace one streamed corpus-QA request end to end and print its span tree.

Builds a tiny corpus deployment, turns tracing on (``repro.obs``), streams a
single ``corpus_qa`` request through a real forked-shard ``ShardedServer``,
and renders everything the observability layer captured: the ASCII span tree
(gateway → dispatch → shard → pipeline stages → decode steps), the merged
gateway ⊕ shard metrics as Prometheus text, and the trace context each
streamed chunk carried.  ``docs/observability.md`` explains the model.

Run with::

    python examples/trace_request.py        # or: make trace-demo
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import obs
from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets.corpus import CorpusDocument, CorpusIndex
from repro.deploy.registry import ModelRegistry
from repro.obs.export import prometheus_text, render_trace
from repro.serving.protocol import Request, assemble_stream
from repro.serving.sharded import ShardConfig, ShardedServer


def build_deployment(scratch: Path) -> tuple[Path, str]:
    """Register a tiny corpus-QA checkpoint and return (registry path, ref)."""
    documents = [
        CorpusDocument(
            doc_id=f"doc-{index}",
            title=f"metric{index} by region",
            chart=f"bar chart showing metric{index} grouped by region",
            schema=None,
            table=f"region | metric{index}",
        )
        for index in range(4)
    ]
    index = CorpusIndex(documents)
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=16, max_decode_length=12, seed=0
    )
    model = DataVisT5.from_corpus(
        [document.text() for document in documents], config=config, max_vocab_size=400
    )
    registry_path = scratch / "registry.json"
    manifest = ModelRegistry(registry_path).register_checkpoint(
        "trace-demo", model, scratch / "ckpt", corpus_index=index
    )
    return registry_path, manifest.id


def main() -> None:
    obs.configure(tracing=True, sample_rate=1.0)
    config = ShardConfig(num_shards=1, heartbeat_timeout_ms=10000.0)
    with tempfile.TemporaryDirectory() as scratch:
        registry_path, ref = build_deployment(Path(scratch))
        with ShardedServer(registry_path, ref, config) as server:
            request = Request(task="corpus_qa", question="what does the bar chart of metric1 show")
            chunks = list(server.stream(request))
            response = assemble_stream(chunks)
            # shard counters arrive on the next heartbeat; give one a moment
            time.sleep(3 * config.heartbeat_interval_ms / 1000.0)
            observed = server.observability()
    obs.configure(tracing=False)

    trace_id = chunks[0].trace["trace_id"]
    print("== streamed answer ==")
    print(response.output or f"(error: {response.error})")
    print(f"\n== trace {trace_id} ({len(chunks)} chunks, all tagged) ==")
    print(render_trace(obs.TRACES.spans(trace_id), trace_id))
    print("\n== merged metrics (gateway + shards), first lines ==")
    print("\n".join(prometheus_text(observed["metrics"]).splitlines()[:16]))
    assert all(chunk.trace is not None for chunk in chunks)
    obs.TRACES.clear()


if __name__ == "__main__":
    main()
