"""Dataset report: regenerate the paper's corpus-statistics tables (Tables I-III).

Prints the nvBench, Chart2Text/WikiTableText and FeVisQA statistics for the
synthetic corpora, in the same row layout the paper uses.  Useful as a quick
sanity check of the data generators without running the full benchmark
harness.

Run with::

    python examples/dataset_report.py
"""

from __future__ import annotations

from repro.evaluation import (
    table01_nvbench_statistics,
    table02_table_corpora_statistics,
    table03_fevisqa_statistics,
)


def main() -> None:
    print("Table I — nvBench statistics (synthetic)")
    rows = table01_nvbench_statistics(examples_per_database=20, seed=0)
    print(f"{'split':<8} {'w/o join':>10} {'all':>8} {'dbs w/o join':>14} {'dbs':>6}")
    for split in ("train", "valid", "test", "total"):
        row = rows[split]
        print(
            f"{split:<8} {row['instances_without_join']:>10} {row['instances']:>8} "
            f"{row['databases_without_join']:>14} {row['databases']:>6}"
        )

    print("\nTable II — Chart2Text / WikiTableText statistics (synthetic)")
    rows = table02_table_corpora_statistics(num_chart2text=300, num_wikitabletext=300, seed=0)
    print(f"{'corpus':<16} {'train':>7} {'valid':>7} {'test':>7} {'min':>6} {'max':>6} {'<=150':>7} {'>150':>6}")
    for name in ("chart2text", "wikitabletext"):
        row = rows[name]
        print(
            f"{name:<16} {row['train']:>7} {row['valid']:>7} {row['test']:>7} "
            f"{row['min_cells']:>6} {row['max_cells']:>6} {row['at_most_150']:>7} {row['more_than_150']:>6}"
        )

    print("\nTable III — FeVisQA statistics (synthetic)")
    rows = table03_fevisqa_statistics(examples_per_database=20, seed=0)
    print(f"{'split':<8} {'dbs':>5} {'QA':>7} {'queries':>9} {'type 1':>8} {'type 2':>8} {'type 3':>8}")
    for split in ("train", "valid", "test"):
        row = rows[split]
        print(
            f"{split:<8} {row['databases']:>5} {row['qa_pairs']:>7} {row['dv_queries']:>9} "
            f"{row['type_1']:>8} {row['type_2']:>8} {row['type_3']:>8}"
        )
    total = rows["total"]
    print(
        f"{'total':<8} {total['databases']:>5} {total['qa_pairs']:>7} {total['dv_queries']:>9} "
        f"{total['type_1']:>8} {total['type_2']:>8} {total['type_3']:>8}"
    )


if __name__ == "__main__":
    main()
