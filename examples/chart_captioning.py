"""Chart captioning: vis-to-text and table-to-text over one database.

This example exercises the two description-generation tasks the paper
motivates for accessibility and visual analytics, serving the vis-to-text
side through the ``repro.serving`` pipeline:

* **vis-to-text** — explain a DV query (and the chart it renders) in plain
  language, comparing the gold description, the pipeline's zero-shot
  heuristic backend and a retrieval of the most similar training description;
* **table-to-text** — describe the execution-result table of the same query
  with a registry-built zero-shot generator.

Run with::

    python examples/chart_captioning.py
"""

from __future__ import annotations

from repro.charts import build_chart
from repro.database import execute_query
from repro.datasets import build_database_pool, generate_nvbench
from repro.encoding import encode_result_table, strip_modality_tags, table_to_text_input
from repro.metrics import evaluate_generation
from repro.serving import Pipeline, build_generation
from repro.utils.text import jaccard_similarity, tokenize_words


def main() -> None:
    pool = build_database_pool(seed=0)
    nvbench = generate_nvbench(pool, examples_per_database=10, seed=0)
    # Pick a bar-chart example with an ORDER BY so the description is non-trivial.
    example = next(e for e in nvbench.examples if e.pattern == "group_agg" and e.query.order_by is not None)
    database = pool.get(example.db_id)

    pipeline = Pipeline.from_config({"vis_to_text": {"type": "heuristics"}})

    print("== DV query ==")
    print(example.query_text)
    result = execute_query(example.query, database)
    chart = build_chart(example.query, result=result)
    print("\n== chart (rendered through the pipeline's render cache) ==")
    print(pipeline.render_chart(chart))

    print("\n== vis-to-text ==")
    response = pipeline.vis_to_text(example.query, schema=database.schema)
    heuristic_caption = response.output

    # Retrieval caption: the description of the most similar other query.
    query_tokens = set(tokenize_words(example.query_text))
    neighbour = max(
        (other for other in nvbench.examples if other.example_id != example.example_id),
        key=lambda other: jaccard_similarity(query_tokens, set(tokenize_words(other.query_text))),
    )
    retrieval_caption = neighbour.description

    print(f"gold        : {example.description}")
    print(f"zero-shot   : {heuristic_caption}")
    print(f"retrieval   : {retrieval_caption}")

    metrics = evaluate_generation(
        [strip_modality_tags(heuristic_caption), retrieval_caption],
        [example.description, example.description],
    )
    print(f"metrics over the two candidate captions: {metrics.as_dict()}")

    print("\n== table-to-text ==")
    generator = build_generation("heuristics")
    table_text = encode_result_table(result, max_rows=6)
    print(f"input table : {table_to_text_input(table_text)[:160]} ...")
    print(f"zero-shot   : {generator.predict(table_to_text_input(table_text))}")

    print("\n== serving statistics ==")
    render_stats = pipeline.caches["render"].stats()
    print(f"render cache: {render_stats}")


if __name__ == "__main__":
    main()
