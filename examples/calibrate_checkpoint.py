"""Calibrating a checkpoint: activation-aware int8 with a mixed-precision policy.

The int8 quantization walkthrough (``docs/numerics.md``), end to end at a
miniature scale:

1. fine-tune a tiny DataVisT5 on serving-format (source, target) pairs;
2. :meth:`DataVisT5.calibrate` on held-out texts — collect activation
   statistics, scan per-module sensitivity, and search the mixed-precision
   :class:`~repro.nn.calibration.QuantPolicy` (SmoothQuant-style
   equalization folded in, worst offenders pinned to float32);
3. :meth:`quantize_int8` under the policy, and compare greedy decodes
   against a float64 sibling on held-out questions;
4. persist the calibrated checkpoint, register it, and rebuild it through
   the :class:`~repro.deploy.registry.ModelRegistry` — the deployed model
   reconstructs the exact calibrated layout from the manifest.

Run with::

    python examples/calibrate_checkpoint.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro.core import DataVisT5, DataVisT5Config
from repro.datasets import build_database_pool, generate_nvbench
from repro.deploy import ModelRegistry
from repro.nn.calibration import quantizable_modules


def main() -> None:
    print("== 1. fine-tuning a tiny model on serving-format pairs ==")
    pool = build_database_pool(num_databases=3, seed=0)
    nvbench = generate_nvbench(pool, examples_per_database=8, seed=0)
    texts = [example.question for example in nvbench.examples]
    texts += [example.query_text for example in nvbench.examples]

    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=32, max_decode_length=16
    )
    model = DataVisT5.from_corpus(texts, config=config, max_vocab_size=600)
    print(f"model parameters    : {model.num_parameters():,}")

    pairs = [(example.question, example.query_text) for example in nvbench.examples]
    steps = 120
    optimizer = model.make_optimizer(total_steps=steps, learning_rate=5e-3)
    rng, loss = random.Random(0), 0.0
    for _ in range(steps):
        chosen = rng.sample(pairs, k=min(8, len(pairs)))
        batch = model.collate([s for s, _ in chosen], [t for _, t in chosen])
        loss = model.train_step(batch, optimizer)
    print(f"final training loss : {loss:.3f} ({steps} steps)")

    # A float64 sibling keeps the reference predictions.
    reference = model.clone_architecture()
    reference.copy_weights_from(model)

    print("\n== 2. calibrating on held-out texts ==")
    held_out = [example.question for example in nvbench.examples[-8:]]
    policy = model.calibrate(held_out, n=8, target_agreement=0.99, max_float_fraction=0.25)
    modules = quantizable_modules(model.model)
    print(f"quantizable modules : {len(modules)}")
    print(f"alpha (equalization): {policy.alpha}")
    print(f"float32-pinned      : {list(policy.float32_modules) or '(none)'}")
    asym = sorted(name for name, mode in policy.modes.items() if mode == "int8_asym")
    print(f"zero-point modules  : {asym or '(none)'}")

    print("\n== 3. quantizing under the policy ==")
    model.quantize_int8()
    questions = [example.question for example in nvbench.examples[:6]]
    fp64 = reference.predict_batch(questions)
    int8 = model.predict_batch(questions)
    agree = sum(a == b for a, b in zip(fp64, int8))
    print(f"greedy agreement    : {agree}/{len(questions)} held-out questions match float64")
    print(f"example prediction  : {int8[0][:72]}")

    print("\n== 4. registering and rebuilding the calibrated deployment ==")
    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(Path(tmp) / "registry.json")
        manifest = registry.register_checkpoint("calibrated", model, Path(tmp) / "ckpt")
        print(f"registered          : {manifest.id} (fingerprint {manifest.fingerprint[:23]}...)")
        print(f"manifest calibration: {len(manifest.calibration['modes'])} module modes recorded")
        pipeline = registry.build_pipeline("calibrated")
        deployed = pipeline.model
        assert deployed.quant_policy == policy
        rebuilt = deployed.predict_batch(questions)
        print(f"deployed agreement  : {sum(a == b for a, b in zip(int8, rebuilt))}/{len(questions)} "
              "match the local quantized model")


if __name__ == "__main__":
    main()
