"""Text-to-vis pipeline: from a natural-language question to a rendered chart.

This example exercises the *non-neural* part of the library the way the
paper's Figure 1 describes the workflow:

1. schema filtration selects the tables mentioned by the question;
2. the question + filtered schema are encoded into the model input format;
3. a DV query (here: the retrieval baseline's prediction and the gold query)
   is standardized, validated and executed on the database;
4. the result is translated to a Vega-Lite spec and rendered as an ASCII chart.

Run with::

    python examples/text_to_vis_pipeline.py
"""

from __future__ import annotations

import json

from repro.baselines import RetrievalTextToVis, RuleBasedTextToVis
from repro.charts import build_chart, render_ascii_chart, to_vega_lite, to_vega_zero
from repro.database import execute_query
from repro.datasets import build_database_pool, generate_nvbench
from repro.encoding import encode_schema, filter_schema, text_to_vis_input
from repro.vql import parse_dv_query, standardize_dv_query, validate_dv_query


def main() -> None:
    pool = build_database_pool(seed=0)
    database = pool.get("theme_gallery")
    question = "Give me a pie chart about the proportion of the number of countries in the artist table ."

    print("== natural-language question ==")
    print(question)

    print("\n== schema filtration (n-gram matching) ==")
    filtered = filter_schema(question, database.schema)
    print("full schema   :", encode_schema(database.schema))
    print("filtered      :", encode_schema(filtered))

    print("\n== model input sequence ==")
    print(text_to_vis_input(question, filtered))

    print("\n== gold DV query (standardized) ==")
    gold = standardize_dv_query(
        parse_dv_query("Visualize PIE SELECT country, COUNT(country) FROM artist GROUP BY country"),
        schema=database.schema,
    )
    validate_dv_query(gold, database.schema)
    print(gold.to_text())

    print("\n== retrieval baseline prediction ==")
    nvbench = generate_nvbench(pool, examples_per_database=10, seed=0)
    baseline = RetrievalTextToVis(revise=True)
    baseline.fit(nvbench.examples, pool)
    predicted = baseline.predict(question, database.schema)
    print(predicted)

    print("\n== rule-based baseline prediction ==")
    rule = RuleBasedTextToVis()
    rule.fit([], pool)
    print(rule.predict(question, database.schema))

    print("\n== execution result and chart ==")
    result = execute_query(gold, database)
    for record in result.to_records():
        print(record)
    chart = build_chart(gold, result=result)
    print()
    print(render_ascii_chart(chart))

    print("\n== Vega-Lite specification ==")
    print(json.dumps(to_vega_lite(gold, data_url="data/artist.json"), indent=2))

    print("\n== Vega-Zero sequence ==")
    print(to_vega_zero(gold))


if __name__ == "__main__":
    main()
