"""Text-to-vis serving: from a natural-language question to a rendered chart.

This example drives the workflow of the paper's Figure 1 through the
``repro.serving`` pipeline: one ``text_to_vis`` call performs schema
filtration, input encoding, baseline inference, VQL parsing/validation and
Vega-Lite spec construction, with every stage cached.  Two registry backends
(retrieval and rule-based) answer the same question, and the gold query is
executed and rendered for comparison.

Run with::

    python examples/text_to_vis_pipeline.py
"""

from __future__ import annotations

import json

from repro.charts import build_chart, render_ascii_chart, to_vega_lite, to_vega_zero
from repro.database import execute_query
from repro.datasets import build_database_pool, generate_nvbench
from repro.serving import Pipeline
from repro.vql import parse_dv_query, standardize_dv_query, validate_dv_query


def main() -> None:
    pool = build_database_pool(seed=0)
    database = pool.get("theme_gallery")
    question = "Give me a pie chart about the proportion of the number of countries in the artist table ."

    print("== natural-language question ==")
    print(question)

    print("\n== serving pipeline (retrieval + rule-based backends) ==")
    pipeline = Pipeline.from_config(
        {
            "text_to_vis": {"type": "retrieval", "revise": True},
            "pipeline": {"max_batch_size": 8},
        }
    )
    nvbench = generate_nvbench(pool, examples_per_database=10, seed=0)
    pipeline.backend("text_to_vis").fit(nvbench.examples, pool)

    response = pipeline.text_to_vis(question, database.schema)
    print("encoded model input :", response.source)
    print("retrieval prediction:", response.output)
    print("valid against schema:", response.valid)

    rule_pipeline = Pipeline.from_config({"text_to_vis": {"type": "template"}})
    rule_pipeline.backend("text_to_vis").fit([], pool)
    print("rule-based prediction:", rule_pipeline.text_to_vis(question, database.schema).output)

    print("\n== repeated request is served from cache ==")
    repeat = pipeline.text_to_vis(question, database.schema)
    print(f"cached: {repeat.cached}   response cache: {pipeline.caches['response'].stats()}")

    print("\n== gold DV query (standardized) ==")
    gold = standardize_dv_query(
        parse_dv_query("Visualize PIE SELECT country, COUNT(country) FROM artist GROUP BY country"),
        schema=database.schema,
    )
    validate_dv_query(gold, database.schema)
    print(gold.to_text())

    print("\n== execution result and chart ==")
    result = execute_query(gold, database)
    for record in result.to_records():
        print(record)
    chart = build_chart(gold, result=result)
    print()
    print(render_ascii_chart(chart))

    print("\n== Vega-Lite specification of the gold query ==")
    print(json.dumps(to_vega_lite(gold), indent=2))

    print("\n== Vega-Lite specification attached to the pipeline's prediction ==")
    print(json.dumps(response.vega_lite or {}, indent=2))

    print("\n== Vega-Zero sequence ==")
    print(to_vega_zero(gold))


if __name__ == "__main__":
    main()
