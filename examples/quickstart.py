"""Quickstart: generate data, pre-train, multi-task fine-tune and query DataVisT5.

This walks the full paper pipeline end to end at a miniature scale:

1. build a pool of synthetic cross-domain databases (the Spider substitute);
2. generate the four task corpora (nvBench / Chart2Text / WikiTableText /
   FeVisQA substitutes) and the hybrid pre-training corpus;
3. hybrid pre-training (span-corruption MLM + bidirectional dual corpus);
4. multi-task fine-tuning with temperature mixing;
5. serve the model through the ``repro.serving`` pipeline — one example per
   task, plus a micro-batched burst and a cache-hit demonstration.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import DataVisT5, DataVisT5Config, HybridPretrainer, MultiTaskFineTuner, TrainingConfig
from repro.datasets.corpus import build_pretraining_corpus
from repro.encoding import strip_modality_tags
from repro.evaluation import build_task_corpora, evaluate_text_to_vis_model
from repro.serving import Pipeline, Request


def main() -> None:
    print("== 1. generating synthetic corpora ==")
    corpora = build_task_corpora(
        num_databases=8,
        examples_per_database=10,
        num_chart2text=40,
        num_wikitabletext=40,
        max_fevisqa=200,
        max_test_examples=12,
        seed=0,
    )
    print(f"databases           : {len(corpora.pool)}")
    print(f"nvBench examples    : {len(corpora.nvbench)}")
    print(f"FeVisQA QA pairs    : {len(corpora.fevisqa)}")
    for task, pairs in corpora.train_pairs.items():
        print(f"train pairs [{task:<13}]: {len(pairs)}")

    print("\n== 2. building the hybrid pre-training corpus ==")
    pretraining_corpus = build_pretraining_corpus(*corpora.pretraining_inputs())
    print(pretraining_corpus.statistics())

    print("\n== 3. hybrid pre-training (MLM + BDC) ==")
    config = DataVisT5Config.from_preset("tiny", max_input_length=128, max_target_length=64, max_decode_length=48)
    model = DataVisT5.from_corpus(pretraining_corpus.all_texts(), config=config, max_vocab_size=2500)
    print(f"model parameters    : {model.num_parameters():,}")
    training = TrainingConfig(num_epochs=1, batch_size=8, learning_rate=5e-3)
    report = HybridPretrainer(model, pretraining_corpus, training).train()
    print(f"pre-training loss   : {report.epoch_losses}")

    print("\n== 4. multi-task fine-tuning (temperature mixing) ==")
    finetune_report = MultiTaskFineTuner(model, corpora.train_pairs, TrainingConfig(num_epochs=2, batch_size=8)).train()
    print(f"fine-tuning loss    : {finetune_report.epoch_losses}")
    print(f"examples per task   : {finetune_report.task_counts}")

    print("\n== 5. serving the trained model through the pipeline ==")
    pipeline = Pipeline.from_model(model)

    t2v_example = corpora.nvbench_splits.test[0]
    t2v_schema = corpora.pool.get(t2v_example.db_id).schema
    response = pipeline.text_to_vis(t2v_example.question, t2v_schema)
    print("\n[text_to_vis]")
    print(f"  question  : {t2v_example.question}")
    print(f"  reference : {t2v_example.query_text}")
    print(f"  prediction: {response.output}")
    print(f"  parses/validates: query={response.query is not None} valid={response.valid}")

    response = pipeline.vis_to_text(t2v_example.query, schema=t2v_schema)
    print("\n[vis_to_text]")
    print(f"  chart     : {t2v_example.query_text[:100]} ...")
    print(f"  prediction: {response.output}")

    qa_example = corpora.fevisqa_splits.test[0]
    response = pipeline.fevisqa(
        qa_example.question,
        chart=qa_example.query_text,
        schema=qa_example.schema_text,
        table=qa_example.table_text or None,
    )
    print("\n[fevisqa]")
    print(f"  question  : {qa_example.question}")
    print(f"  reference : {qa_example.answer}")
    print(f"  prediction: {response.output}")

    # table_to_text has no interactive serving surface; call the model directly.
    table_example = corpora.test_pairs["table_to_text"][0]
    print("\n[table_to_text]")
    print(f"  input     : {table_example.source[:120]} ...")
    print(f"  reference : {strip_modality_tags(table_example.target)}")
    print(f"  prediction: {strip_modality_tags(model.predict(table_example.source))}")

    print("\n== 6. micro-batched burst + response caching ==")
    burst = [
        Request(task="text_to_vis", question=e.question, schema=corpora.pool.get(e.db_id).schema)
        for e in corpora.nvbench_splits.test[:8]
    ]
    pipeline.serve(burst)
    repeats = pipeline.serve(burst)
    print(f"batching      : {pipeline.stats()['batching']['text_to_vis']}")
    print(f"response cache: {pipeline.caches['response'].stats()}")
    print(f"all repeats served from cache: {all(r.cached for r in repeats)}")

    print("\n== 7. text-to-vis EM metrics on the test split ==")
    result = evaluate_text_to_vis_model(model, corpora.nvbench_splits.test[:12], corpora.pool)
    print(result.as_dict())


if __name__ == "__main__":
    main()
