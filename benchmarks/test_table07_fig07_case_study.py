"""Table VII / Figure 7: vis-to-text case study (descriptions of a bar chart with a subquery)."""

from conftest import run_once

from repro.baselines import ZeroShotHeuristicGeneration
from repro.evaluation import case_studies
from repro.metrics import meteor_score


def test_table07_fig07_vis_to_text_case_study(benchmark, experiment_suite):
    corpora = experiment_suite.corpora

    def build():
        systems = {"GPT-4 (0-shot)": ZeroShotHeuristicGeneration()}
        return case_studies.vis_to_text_case_study(corpora.pool, systems=systems)

    study = run_once(benchmark, build)
    print("\nTable VII — descriptions generated for the case-study DV query")
    print(f"DV query    : {study['query']}")
    print(f"Ground truth: {study['ground_truth']}")
    for name, prediction in study["predictions"].items():
        print(f"{name}: {prediction}")
    print("\nFigure 7 — visualization chart")
    print(study["chart"])

    assert "not in" in study["query"]
    assert study["predictions"]
    for prediction in study["predictions"].values():
        assert 0.0 <= meteor_score(prediction, study["ground_truth"]) <= 1.0
