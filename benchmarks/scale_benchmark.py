"""Scale benchmark: the process-sharded tier under a trace-driven open load.

Replays one seeded arrival trace — a diurnal (sinusoidal-rate) open-loop
schedule carrying a heavy-tailed task mix and periodic duplicate storms —
through :class:`repro.serving.ShardedServer` at 1, 2 and 4 shards, and once
more through a 2-shard server while a rolling hot-swap replaces the primary
deployment mid-trace.

Per-request service time is pinned by ``ShardConfig.calibrated_service_ms``
(a per-task sleep inside each shard, the machine-independent stand-in for
heavy backend compute): the sleeps release the GIL and parallelize
perfectly across worker processes, so the measured speedup isolates the
serving fabric — routing, batching, IPC, caching — from host core count.
The tiny model's real forward passes still run, so outputs stay real.

Gates (exit non-zero when violated):

* every response from every scaling run is bitwise-equal to the synchronous
  ``Pipeline.serve`` baseline on the same checkpoint;
* throughput scales: >= ``--min-speedup-2``x at 2 shards and
  >= ``--min-speedup-4``x at 4 shards over the 1-shard run;
* the rolling-swap run drops nothing: zero error responses, every output
  textually equal to the baseline, and the primary finishes flipped.

Run it via ``make bench-scale`` or directly::

    PYTHONPATH=src python benchmarks/scale_benchmark.py --output BENCH_scale.json
"""

from __future__ import annotations

import argparse
import json
import math
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets import build_database_pool, generate_nvbench
from repro.deploy import ModelRegistry
from repro.serving import Request, ShardConfig, ShardedServer

# Heavy-tailed task mix: mostly cheap fact checks, a thin tail of expensive
# text-to-vis generations that dominates total service time.
TASK_WEIGHTS = {"fevisqa": 0.60, "vis_to_text": 0.25, "text_to_vis": 0.15}
SERVICE_MS = {"fevisqa": 50.0, "vis_to_text": 80.0, "text_to_vis": 200.0}


def build_model(args: argparse.Namespace):
    pool = build_database_pool(num_databases=4, seed=args.seed)
    nvbench = generate_nvbench(pool, examples_per_database=8, seed=args.seed)
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=32, max_decode_length=args.decode_length
    )
    texts = [example.question for example in nvbench.examples]
    texts += [example.query_text for example in nvbench.examples]
    model = DataVisT5.from_corpus(texts, config=config, max_vocab_size=800)
    return pool, nvbench, model


def build_trace(args: argparse.Namespace, pool, nvbench) -> tuple[list[Request], list[float], dict]:
    """One seeded open-loop trace: (requests, arrival offsets, workload card).

    Arrivals follow a sinusoidal "diurnal" rate over the window; while the
    rate is near its peak the generator also emits duplicate storms (exact
    repeats of recent requests) that the gateway cache must absorb.
    """
    rng = random.Random(args.seed)
    tasks = list(TASK_WEIGHTS)
    weights = [TASK_WEIGHTS[task] for task in tasks]

    def fresh_request(index: int) -> Request:
        example = nvbench.examples[index % len(nvbench.examples)]
        schema = pool.get(example.db_id).schema
        task = rng.choices(tasks, weights=weights)[0]
        if task == "text_to_vis":
            return Request(task=task, question=example.question, schema=schema)
        if task == "vis_to_text":
            return Request(task=task, chart=example.query, schema=schema)
        return Request(
            task=task,
            question=f"trace {index} : is the largest value in this chart above average ?",
            chart=example.query,
            schema=schema,
        )

    requests: list[Request] = []
    arrivals: list[float] = []
    counts = {"storm_duplicates": 0}
    clock = 0.0
    base_rate = args.num_requests / args.window_s
    while len(requests) < args.num_requests:
        phase = 2.0 * math.pi * args.diurnal_periods * clock / args.window_s
        rate = base_rate * (1.0 + args.diurnal_amplitude * math.sin(phase))
        rate = max(rate, 0.1 * base_rate)
        clock += rng.expovariate(rate)
        at_peak = math.sin(phase) > 0.5
        if requests and at_peak and rng.random() < args.duplicate_rate:
            requests.append(rng.choice(requests[-20:]))  # storm: repeat recent traffic
            counts["storm_duplicates"] += 1
        else:
            requests.append(fresh_request(len(requests)))
        arrivals.append(clock)

    task_counts: dict[str, int] = {}
    for request in requests:
        task_counts[request.task] = task_counts.get(request.task, 0) + 1
    workload = {
        "num_requests": len(requests),
        "arrival_window_s": round(arrivals[-1], 3),
        "diurnal_periods": args.diurnal_periods,
        "diurnal_amplitude": args.diurnal_amplitude,
        "duplicate_rate": args.duplicate_rate,
        "storm_duplicates": counts["storm_duplicates"],
        "tasks": task_counts,
        "calibrated_service_ms": SERVICE_MS,
        "seed": args.seed,
    }
    return requests, arrivals, workload


def shard_config(args: argparse.Namespace, num_shards: int) -> ShardConfig:
    return ShardConfig(
        num_shards=num_shards,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_size=max(512, args.num_requests),
        calibrated_service_ms=SERVICE_MS,
        ring_replicas=128,
        start_timeout_s=120.0,
    )


def run_scaling(args, registry_path, requests, arrivals, sync_responses) -> dict:
    """Replay the trace at each shard count; verify equivalence as we go."""
    runs: dict[str, dict] = {}
    for num_shards in args.shards:
        with ShardedServer(registry_path, "viz@1", shard_config(args, num_shards)) as server:
            start = time.perf_counter()
            responses = server.run_trace(list(requests), list(arrivals))
            makespan = time.perf_counter() - start
            stats = server.stats()
        mismatches = sum(1 for a, b in zip(sync_responses, responses) if a != b)
        runs[str(num_shards)] = {
            "makespan_seconds": round(makespan, 3),
            "requests_per_sec": round(len(requests) / makespan, 2),
            "errors": sum(1 for r in responses if r.error is not None),
            "mismatches_vs_sync": mismatches,
            "cache_hits": stats["requests"]["cache_hits"],
            "coalesced": stats["requests"]["coalesced"],
            "requeues": stats["requeues"],
            "restarts": stats["restarts"],
            "dispatched_per_shard": {
                name: shard["dispatched"] for name, shard in stats["shards"].items()
            },
        }
        entry = runs[str(num_shards)]
        print(
            f"{num_shards} shard(s): {entry['requests_per_sec']:>6.1f} req/s "
            f"(makespan {entry['makespan_seconds']:.2f}s) | "
            f"cache_hits {entry['cache_hits']} | mismatches {entry['mismatches_vs_sync']}"
        )
    return runs


def run_rolling_swap(args, registry_path, requests, arrivals, sync_responses, model, swap_dir) -> dict:
    """Replay the trace on 2 shards and hot-swap the primary mid-window.

    The swap registers a weight-identical v2 checkpoint and promotes it while
    traffic is in flight; nothing may be dropped and every output must still
    match the baseline text (cache flags legitimately differ — v2 is a fresh
    cache namespace).
    """
    ModelRegistry(registry_path).register_checkpoint("viz", model, swap_dir / "ckpt-v2")
    swap_result: dict = {}
    with ShardedServer(registry_path, "viz@1", shard_config(args, 2)) as server:

        def swap() -> None:
            swap_result["deployed"] = server.rolling_swap("viz@2")

        trigger = threading.Timer(args.window_s * 0.3, swap)
        trigger.start()
        start = time.perf_counter()
        responses = server.run_trace(list(requests), list(arrivals))
        makespan = time.perf_counter() - start
        trigger.join()
        stats = server.stats()
    output_mismatches = sum(
        1 for a, b in zip(sync_responses, responses) if a.output != b.output
    )
    return {
        "makespan_seconds": round(makespan, 3),
        "drops": sum(1 for r in responses if r.error is not None),
        "responses": len(responses),
        "output_mismatches_vs_sync": output_mismatches,
        "deployed": swap_result.get("deployed"),
        "primary_after": stats["primary"],
        "swaps": stats["swaps"],
        "restarts": stats["restarts"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_scale.json"))
    parser.add_argument("--num-requests", type=int, default=240)
    parser.add_argument("--window-s", type=float, default=2.0, help="arrival window length")
    parser.add_argument("--diurnal-periods", type=float, default=2.0)
    parser.add_argument("--diurnal-amplitude", type=float, default=0.8)
    parser.add_argument("--duplicate-rate", type=float, default=0.25)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--decode-length", type=int, default=12)
    parser.add_argument("--min-speedup-2", type=float, default=1.7)
    parser.add_argument("--min-speedup-4", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    pool, nvbench, model = build_model(args)
    requests, arrivals, workload = build_trace(args, pool, nvbench)

    workdir = Path(tempfile.mkdtemp(prefix="bench-scale-"))
    registry_path = workdir / "registry.json"
    registry = ModelRegistry(registry_path)
    registry.register_checkpoint("viz", model, workdir / "ckpt-v1")

    # The equivalence baseline: the same checkpoint served synchronously.
    # Outputs are independent of the calibrated sleeps, which exist only
    # inside the shard processes.
    sync_responses = registry.build_pipeline("viz@1").serve(list(requests), strict=False)

    runs = run_scaling(args, registry_path, requests, arrivals, sync_responses)
    swap = run_rolling_swap(args, registry_path, requests, arrivals, sync_responses, model, workdir)
    print(
        f"rolling swap: drops {swap['drops']} | output mismatches "
        f"{swap['output_mismatches_vs_sync']} | primary {swap['primary_after']}"
    )

    baseline = runs.get("1", next(iter(runs.values())))
    speedups = {
        shards: round(baseline["makespan_seconds"] / run["makespan_seconds"], 3)
        for shards, run in runs.items()
    }
    gates = {
        "min_speedup_2_shards": args.min_speedup_2,
        "min_speedup_4_shards": args.min_speedup_4,
    }
    failures: list[str] = []
    for shards, run in runs.items():
        if run["mismatches_vs_sync"]:
            failures.append(
                f"{shards}-shard outputs diverge from Pipeline.serve "
                f"({run['mismatches_vs_sync']} mismatches)"
            )
        if run["errors"]:
            failures.append(f"{shards}-shard run returned {run['errors']} error responses")
    if "2" in runs and speedups["2"] < args.min_speedup_2:
        failures.append(f"2-shard speedup {speedups['2']:.2f}x < {args.min_speedup_2}x")
    if "4" in runs and speedups["4"] < args.min_speedup_4:
        failures.append(f"4-shard speedup {speedups['4']:.2f}x < {args.min_speedup_4}x")
    if swap["drops"]:
        failures.append(f"rolling swap dropped {swap['drops']} requests")
    if swap["output_mismatches_vs_sync"]:
        failures.append(
            f"rolling swap changed {swap['output_mismatches_vs_sync']} outputs"
        )
    if swap["primary_after"] != "viz@2":
        failures.append(f"rolling swap did not flip the primary (still {swap['primary_after']})")

    results = {
        "benchmark": "sharded_scale",
        "workload": workload,
        "config": {
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "shards": args.shards,
        },
        "shards": runs,
        "speedups": speedups,
        "rolling_swap": swap,
        "gates": gates,
        "passed": not failures,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print("speedups:", ", ".join(f"{k} shards: {v:.2f}x" for k, v in speedups.items()))
    print(f"wrote {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
