"""Table III: statistics of the (synthetic) FeVisQA corpus."""

from repro.evaluation.experiments import table03_fevisqa_statistics


def test_table03_fevisqa_statistics(benchmark):
    rows = benchmark(table03_fevisqa_statistics, examples_per_database=20, seed=0)
    print("\nTable III — FeVisQA statistics (synthetic)")
    header = f"{'split':<8} {'dbs':>5} {'QA pairs':>9} {'DV queries':>11} {'type 1':>8} {'type 2':>8} {'type 3':>8}"
    print(header)
    print("-" * len(header))
    for split in ("train", "valid", "test"):
        row = rows[split]
        print(
            f"{split:<8} {row['databases']:>5} {row['qa_pairs']:>9} {row['dv_queries']:>11} "
            f"{row['type_1']:>8} {row['type_2']:>8} {row['type_3']:>8}"
        )
    total = rows["total"]
    print(f"{'total':<8} {total['databases']:>5} {total['qa_pairs']:>9} {total['dv_queries']:>11} "
          f"{total['type_1']:>8} {total['type_2']:>8} {total['type_3']:>8}")
    # Type-3 (rule-generated structure questions) dominates, as in the paper.
    assert total["type_3"] > total["type_1"]
    assert total["qa_pairs"] == total["type_1"] + total["type_2"] + total["type_3"]
