"""Table VI: vis-to-text comparison (BLEU / ROUGE / METEOR)."""

from conftest import run_once

from repro.evaluation.reports import format_table

_METRICS = ("BLEU-1", "BLEU-2", "BLEU-4", "ROUGE-1", "ROUGE-2", "ROUGE-L", "METEOR")


def test_table06_vis_to_text(benchmark, experiment_suite):
    rows = run_once(benchmark, lambda: experiment_suite.table06_rows(include_llm_analogues=True))
    print()
    print(format_table("Table VI — vis-to-text (synthetic)", rows, _METRICS))

    names = [row["model"] for row in rows]
    assert any(name.startswith("DataVisT5") for name in names)
    for row in rows:
        for key in _METRICS:
            assert 0.0 <= row["metrics"][key] <= 1.0
        # BLEU with longer n-grams can never exceed unigram BLEU.
        assert row["metrics"]["BLEU-4"] <= row["metrics"]["BLEU-1"] + 1e-9
