"""Table IV: text-to-vis comparison (Vis / Axis / Data / overall EM, w/o and w/ join)."""

from conftest import run_once

from repro.evaluation.reports import format_text_to_vis_table


def test_table04_text_to_vis(benchmark, experiment_suite):
    rows = run_once(benchmark, lambda: experiment_suite.table04_rows(include_llm_analogues=True))
    print()
    print(format_text_to_vis_table("Table IV — text-to-vis, NVBench w/o join operation (synthetic)", rows, "without_join"))
    print()
    print(format_text_to_vis_table("Table IV — text-to-vis, NVBench w/ join operation (synthetic)", rows, "with_join"))

    names = [row["model"] for row in rows]
    assert any(name.startswith("DataVisT5") for name in names)
    assert len(rows) >= 8
    for row in rows:
        for subset in ("without_join", "with_join"):
            metrics = row.get(subset)
            if metrics is None:
                continue
            for key in ("Vis EM", "Axis EM", "Data EM", "EM"):
                assert 0.0 <= metrics[key] <= 1.0
            # Overall EM can never exceed any of its component matches.
            assert metrics["EM"] <= min(metrics["Vis EM"], metrics["Axis EM"], metrics["Data EM"]) + 1e-9
