"""Table VIII: FeVisQA and table-to-text comparison (BLEU / ROUGE / METEOR)."""

from conftest import run_once

from repro.evaluation.reports import format_table

_FEVISQA_METRICS = ("BLEU-1", "ROUGE-1", "ROUGE-L", "METEOR")
_TABLE_METRICS = ("BLEU-4", "ROUGE-1", "ROUGE-L", "METEOR")


def test_table08_fevisqa_and_table_to_text(benchmark, experiment_suite):
    rows = run_once(benchmark, lambda: experiment_suite.table08_rows(include_llm_analogues=True))
    print()
    print(format_table("Table VIII — FeVisQA (synthetic)", rows["fevisqa"], _FEVISQA_METRICS))
    print()
    print(format_table("Table VIII — table-to-text (synthetic)", rows["table_to_text"], _TABLE_METRICS))

    for task, metric_keys in (("fevisqa", _FEVISQA_METRICS), ("table_to_text", _TABLE_METRICS)):
        names = [row["model"] for row in rows[task]]
        assert any(name.startswith("DataVisT5") for name in names)
        for row in rows[task]:
            for key in metric_keys:
                assert 0.0 <= row["metrics"][key] <= 1.0
