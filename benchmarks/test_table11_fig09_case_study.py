"""Table XI / Figure 9: table-to-text case study (the so ji-sub book table)."""

from conftest import run_once

from repro.baselines import ZeroShotHeuristicGeneration
from repro.evaluation import case_studies
from repro.metrics import rouge_l


def test_table11_fig09_table_to_text_case_study(benchmark):
    def build():
        systems = {"GPT-4 (0-shot)": ZeroShotHeuristicGeneration()}
        return case_studies.table_to_text_case_study(systems=systems)

    study = run_once(benchmark, build)
    print("\nFigure 9 — table used in the table-to-text case study")
    print(study["rendered_table"])
    print("\nTable XI — descriptions generated for the case-study table")
    print(f"Ground truth: {study['ground_truth']}")
    for name, prediction in study["predictions"].items():
        print(f"{name}: {prediction}")

    assert study["ground_truth"] == "Sallim was the publisher of so ji-sub's journey in 2010 ."
    assert study["table"].startswith("| col : subjtitle")
    for prediction in study["predictions"].values():
        assert 0.0 <= rouge_l(prediction, study["ground_truth"]) <= 1.0
