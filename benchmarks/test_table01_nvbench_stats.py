"""Table I: statistics of the (synthetic) nvBench corpus."""

from repro.evaluation.experiments import table01_nvbench_statistics


def test_table01_nvbench_statistics(benchmark):
    rows = benchmark(table01_nvbench_statistics, examples_per_database=20, seed=0)
    print("\nTable I — nvBench statistics (synthetic)")
    header = f"{'split':<8} {'w/o join':>10} {'all':>8} {'dbs w/o join':>14} {'dbs':>6}"
    print(header)
    print("-" * len(header))
    for split in ("train", "valid", "test", "total"):
        row = rows[split]
        print(
            f"{split:<8} {row['instances_without_join']:>10} {row['instances']:>8} "
            f"{row['databases_without_join']:>14} {row['databases']:>6}"
        )
    assert rows["total"]["instances"] > 0
    assert rows["total"]["instances_without_join"] <= rows["total"]["instances"]
