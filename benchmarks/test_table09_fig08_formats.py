"""Table IX / Figure 8: the DV-knowledge sequence formats used by the FeVisQA case study."""

from conftest import run_once

from repro.evaluation import case_studies


def test_table09_fig08_sequence_formats(benchmark, experiment_suite):
    study = run_once(benchmark, lambda: case_studies.fevisqa_case_study(experiment_suite.corpora.pool))
    print("\nTable IX — sequence formats of the DV knowledge used in the FeVisQA case study")
    print(f"DV query : {study['query']}")
    print(f"Table    : {study['table'][:200]} ...")
    print(f"Schema   : {study['schema'][:200]} ...")
    print("\nFigure 8a — visualization chart")
    print(study["chart"])
    print("\nFigure 8b — table")
    print(study["result_table"])

    # The three linearized formats follow the paper's encoding conventions.
    assert study["query"].startswith("visualize bar select film_market_estimation.type")
    assert study["table"].startswith("| col : film_market_estimation.type")
    assert study["schema"].startswith("| film_rank |")
    assert "join film on" in study["query"]
