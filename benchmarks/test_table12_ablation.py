"""Table XII: ablation study over DataVisT5's critical design components."""

from conftest import run_once

from repro.evaluation.reports import format_ablation_table

_TASKS = ("text_to_vis", "vis_to_text", "fevisqa", "table_to_text", "mean")


def test_table12_ablation(benchmark, experiment_suite):
    rows = run_once(benchmark, experiment_suite.table12_rows)
    print()
    print(format_ablation_table("Table XII — ablation study (average metric per task x 100, synthetic)", rows))

    variants = {row["model"] for row in rows}
    assert {"DataVisT5", "w/o BDC", "w/o up-sampling", "w/o MFT"} <= variants
    for row in rows:
        for task in _TASKS:
            assert 0.0 <= row["scores"][task] <= 1.0
    full = next(row for row in rows if row["model"] == "DataVisT5" and row["method"] == "MFT")
    assert full["scores"]["mean"] >= 0.0
