"""Table II: statistics of the Chart2Text-style and WikiTableText-style corpora."""

from repro.evaluation.experiments import table02_table_corpora_statistics


def test_table02_table_corpora_statistics(benchmark):
    rows = benchmark(table02_table_corpora_statistics, num_chart2text=300, num_wikitabletext=300, seed=0)
    print("\nTable II — Chart2Text / WikiTableText statistics (synthetic)")
    header = f"{'corpus':<16} {'train':>7} {'valid':>7} {'test':>7} {'min cells':>10} {'max cells':>10} {'<=150':>7} {'>150':>6}"
    print(header)
    print("-" * len(header))
    for name in ("chart2text", "wikitabletext"):
        row = rows[name]
        print(
            f"{name:<16} {row['train']:>7} {row['valid']:>7} {row['test']:>7} "
            f"{row['min_cells']:>10} {row['max_cells']:>10} {row['at_most_150']:>7} {row['more_than_150']:>6}"
        )
    assert rows["chart2text"]["instances"] == 300
    # The paper keeps only <=150-cell Chart2Text tables; WikiTableText never exceeds that bound.
    assert rows["wikitabletext"]["more_than_150"] == 0
