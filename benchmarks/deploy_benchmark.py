"""Deployment-lifecycle benchmark: hot-swap, canary and shadow under load.

Exercises the ``repro.deploy`` layer the way operations would, against a
smoke-scale DataVisT5 and an open-loop bursty arrival trace (the same
traffic shape as ``benchmarks/serving_benchmark.py``), and writes
``BENCH_deploy.json`` with three sections:

* **hot_swap** — requests stream at the server while
  ``Server.hot_swap`` rolls the incumbent to a weight-identical new version
  mid-trace.  Reported: the swap latency (deploy + atomic route flip +
  drain of the old version), and the proof obligations of zero-downtime —
  zero dropped requests, zero errors, zero misrouted requests (every
  response names a legitimate version; everything submitted after the swap
  lands on the new one), and **bitwise-identical incumbent responses**: a
  probe set served before the swap and re-served after it (fresh compute in
  the new version's cache namespace, never a cache replay) must match
  exactly.
* **canary** — a deterministic hash split at ``--canary-fraction``:
  observed split accuracy over unique request keys, and exact
  retry-affinity (re-submitting every request reproduces its assignment).
* **shadow** — ``--shadow-fraction`` of traffic mirrored to a
  weight-identical candidate: recorded agreement rate (gated at 1.0 —
  identical weights must agree bitwise) and the mean latency delta.

Exits non-zero if any request is dropped, errored or misrouted during the
swap, if the incumbent's before/after outputs differ, if canary routing is
not deterministic or misses its split beyond tolerance, or if shadow
agreement falls below 1.0.

Run it via ``make bench-deploy`` or directly::

    PYTHONPATH=src python benchmarks/deploy_benchmark.py --output BENCH_deploy.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

import repro
from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets import build_database_pool, generate_nvbench
from repro.serving import (
    DEFAULT_DEPLOYMENT,
    Pipeline,
    PipelineConfig,
    Request,
    Server,
    ServerConfig,
)


def build_workload(args: argparse.Namespace) -> tuple[DataVisT5, DataVisT5, list[Request], list[Request]]:
    """The serving model, a weight-identical twin, trace requests and probes.

    The twin is the same seeded build (identical weights), so routing to it
    must produce bitwise-identical outputs — any divergence after a swap is
    a routing or state bug, not model noise.
    """
    pool = build_database_pool(num_databases=4, seed=args.seed)
    nvbench = generate_nvbench(pool, examples_per_database=8, seed=args.seed)

    def make_model() -> DataVisT5:
        config = DataVisT5Config.from_preset(
            "tiny", max_input_length=64, max_target_length=32, max_decode_length=args.decode_length
        )
        texts = [example.question for example in nvbench.examples[:24]]
        texts += [example.query_text for example in nvbench.examples[:24]]
        return DataVisT5.from_corpus(texts, config=config, max_vocab_size=800)

    model, twin = make_model(), make_model()

    requests: list[Request] = []
    for index in range(args.num_requests):
        example = nvbench.examples[index % len(nvbench.examples)]
        schema = pool.get(example.db_id).schema
        if index % 2 == 0:
            requests.append(
                Request(task="fevisqa", question=f"how many rows in group {index} ?", chart=example.query, schema=schema)
            )
        else:
            requests.append(Request(task="vis_to_text", chart=example.query, schema=schema))
    probes = [
        Request(task="fevisqa", question=f"probe question number {index} ?", chart=nvbench.examples[index].query)
        for index in range(args.num_probes)
    ]
    return model, twin, requests, probes


def _server_config(args: argparse.Namespace, queue_size: int) -> ServerConfig:
    return ServerConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_size=queue_size,
        num_workers=args.num_workers,
    )


def run_hot_swap(
    model: DataVisT5, twin: DataVisT5, requests: list[Request], probes: list[Request], args: argparse.Namespace
) -> dict:
    """Stream the trace while the incumbent is hot-swapped mid-flight.

    The trace runs on an explicitly deployed ``incumbent@1`` (not the
    primary fallback), so the measured swap latency covers the whole
    zero-downtime roll: deploy the new engines, flip every route atomically,
    drain the old version's in-flight work and retire it.
    """
    pipeline = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=args.max_batch))
    incumbent = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=args.max_batch))
    replacement = Pipeline.from_model(twin, config=PipelineConfig(max_batch_size=args.max_batch))
    gap_seconds = args.burst_gap_ms / 1000.0
    swap_after = len(requests) // 2

    async def drive() -> dict:
        server = Server(pipeline, _server_config(args, queue_size=max(len(requests), 64)))
        async with server:
            await server.deploy("incumbent@1", incumbent)
            for task in ("fevisqa", "vis_to_text"):
                server.set_routes(task, {"incumbent@1": 1.0})
            before = await server.submit_all(probes)
            pending: list[asyncio.Task] = []
            post_swap_indices: set[int] = set()
            swap_seconds = None
            swapped = False
            start = time.perf_counter()
            for index, request in enumerate(requests):
                offset = (index // args.burst_size) * gap_seconds
                wait = start + offset - time.perf_counter()
                if wait > 0:
                    await asyncio.sleep(wait)
                if index == swap_after:
                    swap_seconds = await server.hot_swap(
                        "incumbent@2", replacement, replaces="incumbent@1"
                    )
                    swapped = True
                if swapped:
                    post_swap_indices.add(index)
                pending.append(asyncio.create_task(server.submit(request)))
            responses = await asyncio.gather(*pending)
            makespan = time.perf_counter() - start
            after = await server.submit_all(probes)
            stats = server.stats()
        return {
            "responses": responses,
            "before": before,
            "after": after,
            "post_swap_indices": post_swap_indices,
            "swap_seconds": swap_seconds,
            "makespan": makespan,
            "stats": stats,
        }

    run = asyncio.run(drive())
    responses = run["responses"]
    dropped = len(requests) - len(responses)
    errored = sum(not response.ok for response in responses)
    served_by: dict[str, int] = {}
    misrouted = 0
    for index, response in enumerate(responses):
        deployment = (response.telemetry or {}).get("deployment")
        served_by[deployment] = served_by.get(deployment, 0) + 1
        if deployment not in ("incumbent@1", "incumbent@2"):
            misrouted += 1
        elif index in run["post_swap_indices"] and deployment != "incumbent@2":
            misrouted += 1
    before_outputs = [response.output for response in run["before"]]
    after_outputs = [response.output for response in run["after"]]
    incumbent_bitwise_identical = before_outputs == after_outputs
    # the post-swap probes must be fresh computes in the new version's cache
    # namespace, or the bitwise check would be a cache replay tautology
    probes_recomputed = all(not response.cached for response in run["after"])
    return {
        "num_requests": len(requests),
        "swap_latency_seconds": round(run["swap_seconds"], 6),
        "makespan_seconds": round(run["makespan"], 6),
        "requests_per_sec": round(len(requests) / run["makespan"], 2),
        "dropped": dropped,
        "errored": errored,
        "misrouted": misrouted,
        "served_by": dict(sorted(served_by.items())),
        "incumbent_bitwise_identical": incumbent_bitwise_identical,
        "probes_recomputed_after_swap": probes_recomputed,
        "old_version_retired": "incumbent@1" not in run["stats"]["deployments"],
        "deployments_after": sorted(run["stats"]["deployments"]),
    }


def run_canary(model: DataVisT5, twin: DataVisT5, requests: list[Request], args: argparse.Namespace) -> dict:
    """Measure split accuracy and retry affinity of the deterministic canary."""
    pipeline = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=args.max_batch))
    candidate = Pipeline.from_model(twin, config=PipelineConfig(max_batch_size=args.max_batch))

    async def drive() -> tuple[list, list]:
        server = Server(pipeline, _server_config(args, queue_size=max(len(requests), 64)))
        async with server:
            await server.deploy("candidate@1", candidate)
            for task in ("fevisqa", "vis_to_text"):
                server.set_canary(task, DEFAULT_DEPLOYMENT, "candidate@1", args.canary_fraction)
            first = await server.submit_all(requests)
            retries = await server.submit_all(requests)
        return first, retries

    first, retries = asyncio.run(drive())
    assignments = [response.telemetry["deployment"] for response in first]
    retry_assignments = [response.telemetry["deployment"] for response in retries]
    observed = assignments.count("candidate@1") / max(len(assignments), 1)
    return {
        "num_requests": len(requests),
        "target_fraction": args.canary_fraction,
        "observed_fraction": round(observed, 4),
        "split_error": round(abs(observed - args.canary_fraction), 4),
        "deterministic": assignments == retry_assignments,
        "all_ok": all(response.ok for response in first + retries),
    }


def run_shadow(model: DataVisT5, twin: DataVisT5, requests: list[Request], args: argparse.Namespace) -> dict:
    """Mirror a fraction of traffic to a weight-identical candidate."""
    pipeline = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=args.max_batch))
    candidate = Pipeline.from_model(twin, config=PipelineConfig(max_batch_size=args.max_batch))

    async def drive() -> tuple[list, dict]:
        server = Server(pipeline, _server_config(args, queue_size=max(2 * len(requests), 64)))
        async with server:
            await server.deploy("candidate@1", candidate)
            for task in ("fevisqa", "vis_to_text"):
                server.set_shadow(task, "candidate@1", args.shadow_fraction)
            responses = await server.submit_all(requests)
            await server.join()  # shadow recorders settle before stats
            stats = server.stats()
        return responses, stats

    responses, stats = asyncio.run(drive())
    bucket_key = f"{DEFAULT_DEPLOYMENT}->candidate@1"
    bucket = stats["shadow"].get(
        bucket_key,
        {
            "samples": 0,
            "agreement_rate": 0.0,
            "mean_latency_delta_ms": 0.0,
            "shadow_errors": 0,
            "primary_errors": 0,
            "dropped": 0,
        },
    )
    return {
        "num_requests": len(requests),
        "shadow_fraction": args.shadow_fraction,
        "samples": bucket["samples"],
        "agreement_rate": bucket["agreement_rate"],
        "mean_latency_delta_ms": bucket["mean_latency_delta_ms"],
        "shadow_errors": bucket["shadow_errors"],
        "primary_errors": bucket["primary_errors"],
        "dropped": bucket["dropped"],
        "all_ok": all(response.ok for response in responses),
        "callers_served_by_primary": all(
            response.telemetry["deployment"] == DEFAULT_DEPLOYMENT for response in responses
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_deploy.json"))
    parser.add_argument("--num-requests", type=int, default=48)
    parser.add_argument("--num-probes", type=int, default=8)
    parser.add_argument("--burst-size", type=int, default=6, help="requests arriving together")
    parser.add_argument("--burst-gap-ms", type=float, default=15.0, help="gap between bursts")
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--num-workers", type=int, default=2)
    parser.add_argument("--decode-length", type=int, default=16)
    parser.add_argument("--canary-fraction", type=float, default=0.25)
    parser.add_argument("--shadow-fraction", type=float, default=0.5)
    parser.add_argument("--split-tolerance", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    model, twin, requests, probes = build_workload(args)

    # Warm the model once (BLAS thread pools, allocator) outside the
    # measured sections so the swap latency is not first-call overhead.
    Pipeline.from_model(model).submit(requests[0])

    hot_swap = run_hot_swap(model, twin, requests, probes, args)
    canary = run_canary(model, twin, requests, args)
    shadow = run_shadow(model, twin, requests, args)

    results = {
        "benchmark": "deployment_lifecycle",
        "repro_version": repro.__version__,
        "workload": {
            "num_requests": args.num_requests,
            "burst_size": args.burst_size,
            "burst_gap_ms": args.burst_gap_ms,
            "decode_length": args.decode_length,
        },
        "config": {
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "num_workers": args.num_workers,
        },
        "hot_swap": hot_swap,
        "canary": canary,
        "shadow": shadow,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    print(
        f"hot swap: {hot_swap['swap_latency_seconds'] * 1000.0:7.1f}ms flip under "
        f"{hot_swap['requests_per_sec']:.1f} req/s | dropped={hot_swap['dropped']} "
        f"errored={hot_swap['errored']} misrouted={hot_swap['misrouted']} | "
        f"incumbent bitwise identical={hot_swap['incumbent_bitwise_identical']}"
    )
    print(
        f"  canary: target {canary['target_fraction']:.2f} observed {canary['observed_fraction']:.2f} "
        f"(|err| {canary['split_error']:.3f}) | deterministic={canary['deterministic']}"
    )
    print(
        f"  shadow: {shadow['samples']} samples | agreement {shadow['agreement_rate']:.4f} | "
        f"mean latency delta {shadow['mean_latency_delta_ms']:+.1f}ms"
    )
    print(f"wrote {args.output}")

    failures = []
    if hot_swap["dropped"]:
        failures.append(f"hot swap dropped {hot_swap['dropped']} requests")
    if hot_swap["errored"]:
        failures.append(f"hot swap errored {hot_swap['errored']} requests")
    if hot_swap["misrouted"]:
        failures.append(f"hot swap misrouted {hot_swap['misrouted']} requests")
    if not hot_swap["incumbent_bitwise_identical"]:
        failures.append("incumbent responses changed across the swap")
    if not hot_swap["probes_recomputed_after_swap"]:
        failures.append("post-swap probes were cache replays, not fresh computes")
    if not hot_swap["old_version_retired"]:
        failures.append("the replaced version was not drained and retired")
    if not canary["deterministic"]:
        failures.append("canary routing is not deterministic per request key")
    if not canary["all_ok"]:
        failures.append("canary run produced errored responses")
    if canary["split_error"] > args.split_tolerance:
        failures.append(
            f"canary split off target by {canary['split_error']:.3f} (> {args.split_tolerance})"
        )
    if shadow["samples"] == 0:
        failures.append("shadow traffic recorded no samples")
    if shadow["agreement_rate"] < 1.0:
        failures.append(
            f"weight-identical shadow agreement {shadow['agreement_rate']:.4f} < 1.0"
        )
    if not shadow["all_ok"] or not shadow["callers_served_by_primary"]:
        failures.append("shadow traffic affected caller responses")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
