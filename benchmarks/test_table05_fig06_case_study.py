"""Table V / Figure 6: text-to-vis case study (DV queries and the charts they render)."""

from conftest import run_once

from repro.baselines import FewShotRetrievalTextToVis, RetrievalTextToVis, RuleBasedTextToVis
from repro.evaluation import case_studies


def test_table05_fig06_text_to_vis_case_study(benchmark, experiment_suite):
    corpora = experiment_suite.corpora
    train = corpora.nvbench_splits.train

    def build():
        systems = {
            "Seq2Vis-like (rule)": RuleBasedTextToVis(),
            "RGVisNet": RetrievalTextToVis(revise=True),
            "GPT-4 (5-shot)": FewShotRetrievalTextToVis(),
        }
        for system in systems.values():
            system.fit(train, corpora.pool)
        return case_studies.text_to_vis_case_study(corpora.pool, systems=systems)

    study = run_once(benchmark, build)
    print("\nTable V — DV queries generated for the case-study question")
    print(f"NL question : {study['question']}")
    print(f"Ground truth: {study['ground_truth']}")
    for name, entry in study["predictions"].items():
        marker = "OK " if entry["matches_ground_truth"] else "DIFF"
        print(f"[{marker}] {name}: {entry['query']}")
    print("\nFigure 6 — chart rendered from the ground-truth DV query")
    print(study["chart"])

    assert study["ground_truth"].startswith("visualize scatter select avg ( rooms.baseprice )")
    assert study["predictions"]
    for entry in study["predictions"].values():
        assert entry["query"]
