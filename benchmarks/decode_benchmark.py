"""Decode throughput benchmark: KV-cached decoding, precision modes, int8.

Two sections, both written to ``BENCH_decode.json`` so the perf trajectory of
the decode hot path is tracked across PRs:

* **cached vs naive** — greedy and beam-search tokens/sec on a smoke-scale
  transformer with and without the per-layer K/V caches; fails (non-zero
  exit) if the cached decoder is slower than the naive reference or the two
  paths disagree on token ids.
* **precision sweep** — cached greedy/beam decode at ``float64`` (the
  reference), ``float32`` (autocast) and ``int8`` (quantized weights +
  float32 compute) on a larger, matmul-dominated model, recording per-mode
  throughput, speedup over float64 and token-agreement rate, plus the
  on-disk checkpoint size of the float64 vs int8 weight formats.  Fails if
  float32 cached greedy is slower than float64 or its token agreement drops
  below ``--agreement-threshold`` (0.99); int8 agreement is recorded but not
  gated — weight rounding is a real accuracy trade-off, documented in
  ``docs/numerics.md``.

Run it via ``make bench-decode`` or directly::

    PYTHONPATH=src python benchmarks/decode_benchmark.py --output BENCH_decode.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.nn.transformer import T5Model, TransformerConfig


def build_model(args: argparse.Namespace) -> T5Model:
    # eos_id=-1 cannot match any token, so every sequence decodes the full
    # token budget: the benchmark measures steady-state decode throughput,
    # not early-exit luck of the randomly initialised weights.
    config = TransformerConfig(
        vocab_size=args.vocab_size,
        d_model=args.d_model,
        num_heads=args.num_heads,
        d_ff=2 * args.d_model,
        num_encoder_layers=args.num_layers,
        num_decoder_layers=args.num_layers,
        eos_id=-1,
        seed=args.seed,
    )
    return T5Model(config).eval()


def time_generate(model: T5Model, input_ids: np.ndarray, **kwargs) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    output = model.generate(input_ids, **kwargs)
    return time.perf_counter() - start, output


def run_mode(model: T5Model, input_ids: np.ndarray, max_new_tokens: int, num_beams: int) -> dict:
    """Benchmark one decode mode (greedy or beam) in both implementations."""
    naive_seconds, naive_out = time_generate(
        model, input_ids, max_length=max_new_tokens, num_beams=num_beams, use_cache=False
    )
    cached_seconds, cached_out = time_generate(
        model, input_ids, max_length=max_new_tokens, num_beams=num_beams, use_cache=True
    )
    tokens = int(input_ids.shape[0]) * max_new_tokens
    return {
        "num_beams": num_beams,
        "batch_size": int(input_ids.shape[0]),
        "new_tokens_per_sequence": max_new_tokens,
        "generated_tokens": tokens,
        "naive_seconds": round(naive_seconds, 6),
        "cached_seconds": round(cached_seconds, 6),
        "naive_tokens_per_sec": round(tokens / naive_seconds, 2),
        "cached_tokens_per_sec": round(tokens / cached_seconds, 2),
        "speedup": round(naive_seconds / cached_seconds, 3),
        "equivalent": bool(np.array_equal(naive_out, cached_out)),
    }


def checkpoint_bytes(state: dict[str, np.ndarray]) -> int:
    """On-disk size of ``state`` saved the way ``DataVisT5.save`` saves weights."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "weights.npz"
        np.savez(path, **state)
        return path.stat().st_size


def token_agreement(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Fraction of token positions where two same-shape decodes agree."""
    if reference.shape != candidate.shape:
        return 0.0
    return float((reference == candidate).mean())


def run_precision_sweep(args: argparse.Namespace) -> dict:
    """Cached decode at float64 / float32 / int8 on a matmul-dominated model.

    The sweep model is deliberately larger than the cached-vs-naive one: the
    point is to measure the BLAS-level win of single precision, which a tiny
    config would bury under per-step python overhead.
    """
    config = TransformerConfig(
        vocab_size=args.precision_vocab_size,
        d_model=args.precision_d_model,
        num_heads=args.precision_num_heads,
        d_ff=2 * args.precision_d_model,
        num_encoder_layers=args.num_layers,
        num_decoder_layers=args.num_layers,
        eos_id=-1,  # decode the full budget; see build_model
        seed=args.seed,
    )
    model = T5Model(config).eval()
    rng = np.random.default_rng(args.seed)
    greedy_inputs = rng.integers(4, config.vocab_size, size=(args.precision_batch_size, args.input_length))
    beam_inputs = rng.integers(4, config.vocab_size, size=(args.beam_batch_size, args.input_length))
    # Same architecture and seed -> identical weights; quantized separately so
    # the float64 reference model stays untouched.
    int8_model = T5Model(config).eval()
    int8_model.quantize_int8()

    float64_bytes = checkpoint_bytes(model.state_dict())
    int8_bytes = checkpoint_bytes(int8_model.int8_state_dict())

    def timed(target: T5Model, inputs: np.ndarray, dtype: str, **kwargs) -> tuple[float, np.ndarray]:
        start = time.perf_counter()
        output = target.generate(inputs, dtype=dtype, **kwargs)
        return time.perf_counter() - start, output

    modes = {"float64": (model, "float64"), "float32": (model, "float32"), "int8": (int8_model, "float32")}
    greedy: dict[str, dict] = {}
    beam: dict[str, dict] = {}
    greedy_reference = beam_reference = None
    for mode, (target, dtype) in modes.items():
        # Per-mode warm-up: the first reduced-precision pass pays one-time
        # cast-memo population (and BLAS pool start-up on the first model),
        # which must not bias the gated timings.
        target.generate(greedy_inputs[:1], max_length=2, dtype=dtype)
        seconds, output = timed(target, greedy_inputs, dtype, max_length=args.max_new_tokens)
        tokens = int(greedy_inputs.shape[0]) * args.max_new_tokens
        greedy_reference = output if mode == "float64" else greedy_reference
        greedy[mode] = {
            "seconds": round(seconds, 6),
            "tokens_per_sec": round(tokens / seconds, 2),
            "speedup_vs_float64": 1.0 if mode == "float64" else round(greedy["float64"]["seconds"] / seconds, 3),
            "token_agreement_vs_float64": token_agreement(greedy_reference, output),
        }
        seconds, output = timed(
            target, beam_inputs, dtype, max_length=args.beam_new_tokens, num_beams=args.num_beams
        )
        tokens = int(beam_inputs.shape[0]) * args.beam_new_tokens
        beam_reference = output if mode == "float64" else beam_reference
        beam[mode] = {
            "seconds": round(seconds, 6),
            "tokens_per_sec": round(tokens / seconds, 2),
            "speedup_vs_float64": 1.0 if mode == "float64" else round(beam["float64"]["seconds"] / seconds, 3),
            "token_agreement_vs_float64": token_agreement(beam_reference, output),
        }

    return {
        "model": {
            "d_model": config.d_model,
            "num_heads": config.num_heads,
            "num_encoder_layers": config.num_encoder_layers,
            "num_decoder_layers": config.num_decoder_layers,
            "vocab_size": config.vocab_size,
            "parameters": model.num_parameters(),
        },
        "batch_size": args.precision_batch_size,
        "new_tokens_per_sequence": args.max_new_tokens,
        "beam_batch_size": args.beam_batch_size,
        "beam_new_tokens_per_sequence": args.beam_new_tokens,
        "num_beams": args.num_beams,
        "agreement_threshold": args.agreement_threshold,
        "greedy": greedy,
        "beam": beam,
        "checkpoint": {
            "float64_bytes": float64_bytes,
            "int8_bytes": int8_bytes,
            "compression_ratio": round(float64_bytes / int8_bytes, 3),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_decode.json"))
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--input-length", type=int, default=16)
    parser.add_argument("--max-new-tokens", type=int, default=64, help="greedy decode budget per sequence")
    parser.add_argument("--beam-new-tokens", type=int, default=24, help="beam decode budget per sequence")
    parser.add_argument("--beam-batch-size", type=int, default=4)
    parser.add_argument("--num-beams", type=int, default=4)
    parser.add_argument("--vocab-size", type=int, default=96)
    parser.add_argument("--d-model", type=int, default=64)
    parser.add_argument("--num-heads", type=int, default=4)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--precision-d-model", type=int, default=256, help="precision-sweep model width")
    parser.add_argument("--precision-num-heads", type=int, default=8)
    parser.add_argument("--precision-vocab-size", type=int, default=512)
    parser.add_argument("--precision-batch-size", type=int, default=32)
    parser.add_argument("--agreement-threshold", type=float, default=0.99, help="minimum fp32 greedy token agreement")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    model = build_model(args)
    rng = np.random.default_rng(args.seed)
    greedy_inputs = rng.integers(4, args.vocab_size, size=(args.batch_size, args.input_length))
    beam_inputs = rng.integers(4, args.vocab_size, size=(args.beam_batch_size, args.input_length))

    # One warm-up step so BLAS thread pools and allocator state do not skew
    # whichever implementation happens to run first.
    model.generate(greedy_inputs[:1], max_length=2)

    results = {
        "benchmark": "decode_throughput",
        "model": {
            "d_model": args.d_model,
            "num_heads": args.num_heads,
            "num_encoder_layers": args.num_layers,
            "num_decoder_layers": args.num_layers,
            "vocab_size": args.vocab_size,
            "parameters": model.num_parameters(),
        },
        "greedy": run_mode(model, greedy_inputs, args.max_new_tokens, num_beams=1),
        "beam": run_mode(model, beam_inputs, args.beam_new_tokens, num_beams=args.num_beams),
        "precision_sweep": run_precision_sweep(args),
    }

    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    failures = []
    for mode in ("greedy", "beam"):
        entry = results[mode]
        print(
            f"{mode:>6}: naive {entry['naive_tokens_per_sec']:>9.1f} tok/s | "
            f"cached {entry['cached_tokens_per_sec']:>9.1f} tok/s | "
            f"speedup {entry['speedup']:.2f}x | equivalent={entry['equivalent']}"
        )
        if not entry["equivalent"]:
            failures.append(f"{mode}: cached and naive decode disagree on token ids")
        if entry["speedup"] < 1.0:
            failures.append(f"{mode}: cached decode is slower than naive ({entry['speedup']:.2f}x)")

    sweep = results["precision_sweep"]
    for mode in ("float64", "float32", "int8"):
        entry = sweep["greedy"][mode]
        print(
            f"{mode:>7}: greedy {entry['tokens_per_sec']:>9.1f} tok/s "
            f"({entry['speedup_vs_float64']:.2f}x vs fp64, agreement {entry['token_agreement_vs_float64']:.4f}) | "
            f"beam {sweep['beam'][mode]['tokens_per_sec']:>9.1f} tok/s "
            f"({sweep['beam'][mode]['speedup_vs_float64']:.2f}x)"
        )
    checkpoint = sweep["checkpoint"]
    print(
        f"checkpoint: fp64 {checkpoint['float64_bytes']} B | int8 {checkpoint['int8_bytes']} B | "
        f"{checkpoint['compression_ratio']:.2f}x smaller"
    )
    fp32_greedy = sweep["greedy"]["float32"]
    if fp32_greedy["speedup_vs_float64"] < 1.0:
        failures.append(
            f"precision: float32 cached greedy is slower than float64 "
            f"({fp32_greedy['speedup_vs_float64']:.2f}x)"
        )
    if fp32_greedy["token_agreement_vs_float64"] < args.agreement_threshold:
        failures.append(
            f"precision: float32 greedy token agreement {fp32_greedy['token_agreement_vs_float64']:.4f} "
            f"below threshold {args.agreement_threshold}"
        )
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
