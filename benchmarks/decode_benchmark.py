"""Decode throughput benchmark: KV-cached decoding, precision modes, int8.

Two sections, both written to ``BENCH_decode.json`` so the perf trajectory of
the decode hot path is tracked across PRs:

* **cached vs naive** — greedy and beam-search tokens/sec on a smoke-scale
  transformer with and without the per-layer K/V caches; fails (non-zero
  exit) if the cached decoder is slower than the naive reference or the two
  paths disagree on token ids.
* **precision sweep** — cached greedy/beam decode at ``float64`` (the
  reference), ``float32`` (autocast) and ``int8`` on a larger,
  matmul-dominated model that is first *briefly trained* (so its logits have
  real margins — an untrained model's near-argmax ties make token agreement
  meaningless; see ``docs/numerics.md``), recording per-mode throughput,
  speedup over float64 and token-agreement rate, plus the on-disk checkpoint
  size of the float64 vs int8 weight formats.  Two int8 variants run:
  ``int8_uncalibrated`` (plain weight-max quantization of every module,
  recorded only — it demonstrates the agreement collapse calibration fixes)
  and ``int8`` (activation-aware calibration via
  :func:`repro.nn.calibration.calibrate_policy`: equalization + a
  mixed-precision policy).  **Gated**: float32 cached greedy must be no
  slower than float64 with token agreement >= ``--agreement-threshold``
  (0.99), and calibrated int8 greedy must reach the same agreement bar,
  a >= ``--int8-speedup-threshold`` (1.5x) speedup over float64, and a
  >= ``--compression-threshold`` (6x) checkpoint compression — any miss is a
  non-zero exit.  The calibrated policy itself is written to
  ``--policy-output`` (``BENCH_quant_policy.json``) as a build artifact.

Run it via ``make bench-decode`` or directly::

    PYTHONPATH=src python benchmarks/decode_benchmark.py --output BENCH_decode.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.nn.calibration import QUANT_MODES, apply_policy, calibrate_policy, token_agreement
from repro.nn.optim import Adam
from repro.nn.transformer import T5Model, TransformerConfig


def build_model(args: argparse.Namespace) -> T5Model:
    # eos_id=-1 cannot match any token, so every sequence decodes the full
    # token budget: the benchmark measures steady-state decode throughput,
    # not early-exit luck of the randomly initialised weights.
    config = TransformerConfig(
        vocab_size=args.vocab_size,
        d_model=args.d_model,
        num_heads=args.num_heads,
        d_ff=2 * args.d_model,
        num_encoder_layers=args.num_layers,
        num_decoder_layers=args.num_layers,
        eos_id=-1,
        seed=args.seed,
    )
    return T5Model(config).eval()


def time_generate(model: T5Model, input_ids: np.ndarray, **kwargs) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    output = model.generate(input_ids, **kwargs)
    return time.perf_counter() - start, output


def run_mode(model: T5Model, input_ids: np.ndarray, max_new_tokens: int, num_beams: int) -> dict:
    """Benchmark one decode mode (greedy or beam) in both implementations."""
    naive_seconds, naive_out = time_generate(
        model, input_ids, max_length=max_new_tokens, num_beams=num_beams, use_cache=False
    )
    cached_seconds, cached_out = time_generate(
        model, input_ids, max_length=max_new_tokens, num_beams=num_beams, use_cache=True
    )
    tokens = int(input_ids.shape[0]) * max_new_tokens
    return {
        "num_beams": num_beams,
        "batch_size": int(input_ids.shape[0]),
        "new_tokens_per_sequence": max_new_tokens,
        "generated_tokens": tokens,
        "naive_seconds": round(naive_seconds, 6),
        "cached_seconds": round(cached_seconds, 6),
        "naive_tokens_per_sec": round(tokens / naive_seconds, 2),
        "cached_tokens_per_sec": round(tokens / cached_seconds, 2),
        "speedup": round(naive_seconds / cached_seconds, 3),
        "equivalent": bool(np.array_equal(naive_out, cached_out)),
    }


def checkpoint_bytes(state: dict[str, np.ndarray]) -> int:
    """On-disk size of ``state`` saved the way ``DataVisT5.save`` saves weights."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "weights.npz"
        np.savez(path, **state)
        return path.stat().st_size


def train_sweep_model(model: T5Model, config: TransformerConfig, steps: int, seed: int) -> float:
    """Briefly train ``model`` on a synthetic shift task; returns the final loss.

    The task (output = input ids shifted by +1) is learnable in ~100 steps at
    this scale, which is all the sweep needs: trained logits have argmax
    margins, so token agreement across precisions measures quantization
    error rather than coin-flip tie-breaking on a random model.
    """
    rng = np.random.default_rng(seed)
    optimizer = Adam(model.parameters(), learning_rate=3e-3)
    loss_value = float("nan")
    model.train()
    for _ in range(steps):
        sources = rng.integers(4, config.vocab_size - 1, size=(8, 16))
        optimizer.zero_grad()
        output = model(sources, labels=sources + 1)
        output["loss"].backward()
        optimizer.step()
        loss_value = float(output["loss"].item())
    model.eval()
    return loss_value


def quantized_checkpoint_state(model: T5Model, policy) -> dict[str, np.ndarray]:
    """The ``weights.npz`` entries ``DataVisT5.save`` would write for ``model``.

    Float32-pinned weights are stored as float32 and the policy travels as a
    JSON entry, so the measured checkpoint size is the size a calibrated
    deployment actually pays.
    """
    state = model.int8_state_dict()
    for name in policy.float32_modules:
        key = f"{name}.weight"
        if key in state:
            state[key] = state[key].astype(np.float32)
    state["__quant_policy__"] = np.array(policy.to_json())
    return state


def run_precision_sweep(args: argparse.Namespace) -> tuple[dict, dict]:
    """Cached decode at float64 / float32 / int8 on a matmul-dominated model.

    The sweep model is deliberately larger than the cached-vs-naive one: the
    point is to measure the BLAS-level win of single precision, which a tiny
    config would bury under per-step python overhead.  Returns the sweep
    results plus the calibrated-policy artifact payload.
    """
    config = TransformerConfig(
        vocab_size=args.precision_vocab_size,
        d_model=args.precision_d_model,
        num_heads=args.precision_num_heads,
        d_ff=2 * args.precision_d_model,
        num_encoder_layers=args.num_layers,
        num_decoder_layers=args.num_layers,
        eos_id=-1,  # decode the full budget; see build_model
        seed=args.seed,
    )
    model = T5Model(config).eval()
    final_loss = train_sweep_model(model, config, args.train_steps, args.seed)
    trained_state = model.state_dict()
    # Evaluation inputs come from a stream the training loop never saw (the
    # training batches draw from default_rng(seed)); measuring agreement on
    # memorized sequences would flatter the uncalibrated quantizer.
    rng = np.random.default_rng(args.seed + 123)
    greedy_inputs = rng.integers(4, config.vocab_size - 1, size=(args.precision_batch_size, args.input_length))
    beam_inputs = rng.integers(4, config.vocab_size - 1, size=(args.beam_batch_size, args.input_length))
    calibration_inputs = rng.integers(
        4, config.vocab_size - 1, size=(args.calibration_batch_size, args.input_length)
    )

    def sibling() -> T5Model:
        clone = T5Model(config).eval()
        clone.load_state_dict(trained_state)
        return clone

    # The collapse exhibit: plain weight-max quantization of every module.
    naive_model = sibling()
    naive_model.quantize_int8()
    # The fix: activation stats + equalization + mixed-precision policy.
    int8_model = sibling()
    calibrate_start = time.perf_counter()
    # Calibrate to a *stricter* bar than the gate: the policy search only
    # sees the calibration set, and the slack between 0.999 there and 0.99
    # on the held-out eval set absorbs generalization error.
    policy, stats = calibrate_policy(
        int8_model,
        calibration_inputs,
        alpha=args.calibration_alpha,
        target_agreement=args.calibration_target,
        max_float_fraction=0.10,
        max_length=args.max_new_tokens,
    )
    apply_policy(int8_model, policy, stats)
    calibrate_seconds = time.perf_counter() - calibrate_start

    float64_bytes = checkpoint_bytes(trained_state)
    int8_bytes = checkpoint_bytes(quantized_checkpoint_state(int8_model, policy))

    def timed(target: T5Model, inputs: np.ndarray, dtype: str, **kwargs) -> tuple[float, np.ndarray]:
        start = time.perf_counter()
        output = target.generate(inputs, dtype=dtype, **kwargs)
        return time.perf_counter() - start, output

    modes = {
        "float64": (model, "float64"),
        "float32": (model, "float32"),
        "int8_uncalibrated": (naive_model, "float32"),
        "int8": (int8_model, "float32"),
    }
    greedy: dict[str, dict] = {}
    beam: dict[str, dict] = {}
    greedy_reference = beam_reference = None
    for mode, (target, dtype) in modes.items():
        # Per-mode warm-up: the first reduced-precision pass pays one-time
        # cast-memo population (and BLAS pool start-up on the first model),
        # which must not bias the gated timings.
        target.generate(greedy_inputs[:1], max_length=2, dtype=dtype)
        seconds, output = timed(target, greedy_inputs, dtype, max_length=args.max_new_tokens)
        tokens = int(greedy_inputs.shape[0]) * args.max_new_tokens
        greedy_reference = output if mode == "float64" else greedy_reference
        greedy[mode] = {
            "seconds": round(seconds, 6),
            "tokens_per_sec": round(tokens / seconds, 2),
            "speedup_vs_float64": 1.0 if mode == "float64" else round(greedy["float64"]["seconds"] / seconds, 3),
            "token_agreement_vs_float64": token_agreement(greedy_reference, output),
        }
        seconds, output = timed(
            target, beam_inputs, dtype, max_length=args.beam_new_tokens, num_beams=args.num_beams
        )
        tokens = int(beam_inputs.shape[0]) * args.beam_new_tokens
        beam_reference = output if mode == "float64" else beam_reference
        beam[mode] = {
            "seconds": round(seconds, 6),
            "tokens_per_sec": round(tokens / seconds, 2),
            "speedup_vs_float64": 1.0 if mode == "float64" else round(beam["float64"]["seconds"] / seconds, 3),
            "token_agreement_vs_float64": token_agreement(beam_reference, output),
        }

    sweep = {
        "model": {
            "d_model": config.d_model,
            "num_heads": config.num_heads,
            "num_encoder_layers": config.num_encoder_layers,
            "num_decoder_layers": config.num_decoder_layers,
            "vocab_size": config.vocab_size,
            "parameters": model.num_parameters(),
        },
        "train_steps": args.train_steps,
        "final_train_loss": round(final_loss, 4),
        "batch_size": args.precision_batch_size,
        "new_tokens_per_sequence": args.max_new_tokens,
        "beam_batch_size": args.beam_batch_size,
        "beam_new_tokens_per_sequence": args.beam_new_tokens,
        "num_beams": args.num_beams,
        "agreement_threshold": args.agreement_threshold,
        "int8_speedup_threshold": args.int8_speedup_threshold,
        "compression_threshold": args.compression_threshold,
        "greedy": greedy,
        "beam": beam,
        "checkpoint": {
            "float64_bytes": float64_bytes,
            "int8_bytes": int8_bytes,
            "compression_ratio": round(float64_bytes / int8_bytes, 3),
        },
    }
    mode_counts = {mode: sum(1 for m in policy.modes.values() if m == mode) for mode in QUANT_MODES}
    policy_payload = {
        "benchmark": "quant_policy",
        "policy": policy.as_dict(),
        "calibration_seconds": round(calibrate_seconds, 3),
        "calibration_batch_size": args.calibration_batch_size,
        "float32_pinned_modules": list(policy.float32_modules),
        "assigned_mode_counts": mode_counts,
        "greedy_agreement_calibrated": greedy["int8"]["token_agreement_vs_float64"],
        "greedy_agreement_uncalibrated": greedy["int8_uncalibrated"]["token_agreement_vs_float64"],
    }
    return sweep, policy_payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_decode.json"))
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--input-length", type=int, default=16)
    parser.add_argument("--max-new-tokens", type=int, default=64, help="greedy decode budget per sequence")
    parser.add_argument("--beam-new-tokens", type=int, default=24, help="beam decode budget per sequence")
    parser.add_argument("--beam-batch-size", type=int, default=4)
    parser.add_argument("--num-beams", type=int, default=4)
    parser.add_argument("--vocab-size", type=int, default=96)
    parser.add_argument("--d-model", type=int, default=64)
    parser.add_argument("--num-heads", type=int, default=4)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--precision-d-model", type=int, default=256, help="precision-sweep model width")
    parser.add_argument("--precision-num-heads", type=int, default=8)
    parser.add_argument("--precision-vocab-size", type=int, default=512)
    parser.add_argument("--precision-batch-size", type=int, default=32)
    parser.add_argument(
        "--agreement-threshold",
        type=float,
        default=0.99,
        help="minimum greedy token agreement for fp32 AND calibrated int8",
    )
    parser.add_argument(
        "--int8-speedup-threshold", type=float, default=1.5, help="minimum calibrated int8 greedy speedup vs float64"
    )
    parser.add_argument(
        "--compression-threshold", type=float, default=6.0, help="minimum int8 checkpoint compression vs float64"
    )
    parser.add_argument(
        "--train-steps", type=int, default=150, help="sweep-model training steps (margins for agreement measurement)"
    )
    # Agreement damage is sequence-dependent (a diverging sequence wrecks
    # most of its positions; the rest agree perfectly), so the calibration
    # set must be large enough to contain diverging sequences at all — too
    # small a set sees none and the policy search under-pins.
    parser.add_argument("--calibration-batch-size", type=int, default=96, help="held-out calibration sequences")
    parser.add_argument("--calibration-alpha", type=float, default=0.5, help="SmoothQuant outlier-migration knob")
    parser.add_argument(
        "--calibration-target",
        type=float,
        default=0.999,
        help="agreement the policy search aims for on the calibration set (stricter than the gate)",
    )
    parser.add_argument(
        "--policy-output", type=Path, default=Path("BENCH_quant_policy.json"), help="calibrated QuantPolicy artifact"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    model = build_model(args)
    rng = np.random.default_rng(args.seed)
    greedy_inputs = rng.integers(4, args.vocab_size, size=(args.batch_size, args.input_length))
    beam_inputs = rng.integers(4, args.vocab_size, size=(args.beam_batch_size, args.input_length))

    # One warm-up step so BLAS thread pools and allocator state do not skew
    # whichever implementation happens to run first.
    model.generate(greedy_inputs[:1], max_length=2)

    results = {
        "benchmark": "decode_throughput",
        "model": {
            "d_model": args.d_model,
            "num_heads": args.num_heads,
            "num_encoder_layers": args.num_layers,
            "num_decoder_layers": args.num_layers,
            "vocab_size": args.vocab_size,
            "parameters": model.num_parameters(),
        },
        "greedy": run_mode(model, greedy_inputs, args.max_new_tokens, num_beams=1),
        "beam": run_mode(model, beam_inputs, args.beam_new_tokens, num_beams=args.num_beams),
    }
    sweep_results, policy_payload = run_precision_sweep(args)
    results["precision_sweep"] = sweep_results

    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    args.policy_output.write_text(json.dumps(policy_payload, indent=2) + "\n", encoding="utf-8")

    failures = []
    for mode in ("greedy", "beam"):
        entry = results[mode]
        print(
            f"{mode:>6}: naive {entry['naive_tokens_per_sec']:>9.1f} tok/s | "
            f"cached {entry['cached_tokens_per_sec']:>9.1f} tok/s | "
            f"speedup {entry['speedup']:.2f}x | equivalent={entry['equivalent']}"
        )
        if not entry["equivalent"]:
            failures.append(f"{mode}: cached and naive decode disagree on token ids")
        if entry["speedup"] < 1.0:
            failures.append(f"{mode}: cached decode is slower than naive ({entry['speedup']:.2f}x)")

    sweep = results["precision_sweep"]
    for mode in ("float64", "float32", "int8_uncalibrated", "int8"):
        entry = sweep["greedy"][mode]
        print(
            f"{mode:>17}: greedy {entry['tokens_per_sec']:>9.1f} tok/s "
            f"({entry['speedup_vs_float64']:.2f}x vs fp64, agreement {entry['token_agreement_vs_float64']:.4f}) | "
            f"beam {sweep['beam'][mode]['tokens_per_sec']:>9.1f} tok/s "
            f"({sweep['beam'][mode]['speedup_vs_float64']:.2f}x)"
        )
    checkpoint = sweep["checkpoint"]
    print(
        f"checkpoint: fp64 {checkpoint['float64_bytes']} B | int8 {checkpoint['int8_bytes']} B | "
        f"{checkpoint['compression_ratio']:.2f}x smaller"
    )
    print(f"calibration: pinned {policy_payload['float32_pinned_modules']} to float32")
    fp32_greedy = sweep["greedy"]["float32"]
    if fp32_greedy["speedup_vs_float64"] < 1.0:
        failures.append(
            f"precision: float32 cached greedy is slower than float64 "
            f"({fp32_greedy['speedup_vs_float64']:.2f}x)"
        )
    if fp32_greedy["token_agreement_vs_float64"] < args.agreement_threshold:
        failures.append(
            f"precision: float32 greedy token agreement {fp32_greedy['token_agreement_vs_float64']:.4f} "
            f"below threshold {args.agreement_threshold}"
        )
    int8_greedy = sweep["greedy"]["int8"]
    if int8_greedy["token_agreement_vs_float64"] < args.agreement_threshold:
        failures.append(
            f"precision: calibrated int8 greedy token agreement "
            f"{int8_greedy['token_agreement_vs_float64']:.4f} below threshold {args.agreement_threshold}"
        )
    if int8_greedy["speedup_vs_float64"] < args.int8_speedup_threshold:
        failures.append(
            f"precision: calibrated int8 greedy speedup {int8_greedy['speedup_vs_float64']:.2f}x "
            f"below threshold {args.int8_speedup_threshold}x"
        )
    if checkpoint["compression_ratio"] < args.compression_threshold:
        failures.append(
            f"precision: int8 checkpoint compression {checkpoint['compression_ratio']:.2f}x "
            f"below threshold {args.compression_threshold}x"
        )
    print(f"wrote {args.output} and {args.policy_output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
