"""Decode throughput benchmark: KV-cached incremental decoding vs the naive loop.

Measures greedy and beam-search generation tokens/sec on a smoke-scale
transformer, with and without the per-layer K/V caches, and writes the
results to ``BENCH_decode.json`` so the perf trajectory of the decode hot
path is tracked across PRs.  The script fails (non-zero exit) if the cached
decoder is slower than the naive reference or if the two paths disagree on
token ids — the benchmark doubles as an end-to-end equivalence check.

Run it via ``make bench-decode`` or directly::

    PYTHONPATH=src python benchmarks/decode_benchmark.py --output BENCH_decode.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.nn.transformer import T5Model, TransformerConfig


def build_model(args: argparse.Namespace) -> T5Model:
    # eos_id=-1 cannot match any token, so every sequence decodes the full
    # token budget: the benchmark measures steady-state decode throughput,
    # not early-exit luck of the randomly initialised weights.
    config = TransformerConfig(
        vocab_size=args.vocab_size,
        d_model=args.d_model,
        num_heads=args.num_heads,
        d_ff=2 * args.d_model,
        num_encoder_layers=args.num_layers,
        num_decoder_layers=args.num_layers,
        eos_id=-1,
        seed=args.seed,
    )
    return T5Model(config).eval()


def time_generate(model: T5Model, input_ids: np.ndarray, **kwargs) -> tuple[float, np.ndarray]:
    start = time.perf_counter()
    output = model.generate(input_ids, **kwargs)
    return time.perf_counter() - start, output


def run_mode(model: T5Model, input_ids: np.ndarray, max_new_tokens: int, num_beams: int) -> dict:
    """Benchmark one decode mode (greedy or beam) in both implementations."""
    naive_seconds, naive_out = time_generate(
        model, input_ids, max_length=max_new_tokens, num_beams=num_beams, use_cache=False
    )
    cached_seconds, cached_out = time_generate(
        model, input_ids, max_length=max_new_tokens, num_beams=num_beams, use_cache=True
    )
    tokens = int(input_ids.shape[0]) * max_new_tokens
    return {
        "num_beams": num_beams,
        "batch_size": int(input_ids.shape[0]),
        "new_tokens_per_sequence": max_new_tokens,
        "generated_tokens": tokens,
        "naive_seconds": round(naive_seconds, 6),
        "cached_seconds": round(cached_seconds, 6),
        "naive_tokens_per_sec": round(tokens / naive_seconds, 2),
        "cached_tokens_per_sec": round(tokens / cached_seconds, 2),
        "speedup": round(naive_seconds / cached_seconds, 3),
        "equivalent": bool(np.array_equal(naive_out, cached_out)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_decode.json"))
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--input-length", type=int, default=16)
    parser.add_argument("--max-new-tokens", type=int, default=64, help="greedy decode budget per sequence")
    parser.add_argument("--beam-new-tokens", type=int, default=24, help="beam decode budget per sequence")
    parser.add_argument("--beam-batch-size", type=int, default=4)
    parser.add_argument("--num-beams", type=int, default=4)
    parser.add_argument("--vocab-size", type=int, default=96)
    parser.add_argument("--d-model", type=int, default=64)
    parser.add_argument("--num-heads", type=int, default=4)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    model = build_model(args)
    rng = np.random.default_rng(args.seed)
    greedy_inputs = rng.integers(4, args.vocab_size, size=(args.batch_size, args.input_length))
    beam_inputs = rng.integers(4, args.vocab_size, size=(args.beam_batch_size, args.input_length))

    # One warm-up step so BLAS thread pools and allocator state do not skew
    # whichever implementation happens to run first.
    model.generate(greedy_inputs[:1], max_length=2)

    results = {
        "benchmark": "decode_throughput",
        "model": {
            "d_model": args.d_model,
            "num_heads": args.num_heads,
            "num_encoder_layers": args.num_layers,
            "num_decoder_layers": args.num_layers,
            "vocab_size": args.vocab_size,
            "parameters": model.num_parameters(),
        },
        "greedy": run_mode(model, greedy_inputs, args.max_new_tokens, num_beams=1),
        "beam": run_mode(model, beam_inputs, args.beam_new_tokens, num_beams=args.num_beams),
    }

    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    failures = []
    for mode in ("greedy", "beam"):
        entry = results[mode]
        print(
            f"{mode:>6}: naive {entry['naive_tokens_per_sec']:>9.1f} tok/s | "
            f"cached {entry['cached_tokens_per_sec']:>9.1f} tok/s | "
            f"speedup {entry['speedup']:.2f}x | equivalent={entry['equivalent']}"
        )
        if not entry["equivalent"]:
            failures.append(f"{mode}: cached and naive decode disagree on token ids")
        if entry["speedup"] < 1.0:
            failures.append(f"{mode}: cached decode is slower than naive ({entry['speedup']:.2f}x)")
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
