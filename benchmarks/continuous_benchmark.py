"""Continuous-batching benchmark: token-level scheduling vs static request batches.

Three gated sections, written to ``BENCH_continuous.json``:

* **throughput** — a saturated burst of mixed-budget requests (short and
  long decode budgets interleaved) served two ways: static FIFO batches that
  decode lock-step until the *longest* member's budget (the micro-batcher
  model), and the continuous scheduler, which admits into free slots every
  step and evicts each sequence at its own budget.  Useful tokens/sec (sum
  of per-request budgets over wall time) must be at least as high on the
  continuous path.
* **latency** — an open-loop trace (real threads, fixed arrival schedule) of
  mixed short/long requests against both schedulers.  The p50 latency of
  *short* requests must improve by at least ``--latency-factor`` (1.5x):
  under static batching a short request convoyed with a long one waits the
  long request's full budget, while the continuous loop releases it the
  moment its own EOS/budget lands.
* **equivalence** — every output the continuous scheduler produced, in both
  sections, must be bitwise-equal to that row's solo
  ``generate(use_cache=False)`` decode.  Scheduling is a latency/throughput
  optimisation, never a numerics change.

Run it via ``make bench-continuous`` or directly::

    PYTHONPATH=src python benchmarks/continuous_benchmark.py --output BENCH_continuous.json
"""

from __future__ import annotations

import argparse
import json
import queue
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.nn.transformer import T5Model, TransformerConfig
from repro.obs.metrics import Histogram
from repro.serving.continuous import ContinuousDecodeLoop


def build_model(args: argparse.Namespace) -> T5Model:
    # eos_id=-1 cannot match any token, so every sequence decodes its full
    # budget: budgets, not the luck of random weights, shape the schedule.
    config = TransformerConfig(
        vocab_size=args.vocab_size,
        d_model=args.d_model,
        num_heads=args.num_heads,
        d_ff=2 * args.d_model,
        num_encoder_layers=args.num_layers,
        num_decoder_layers=args.num_layers,
        eos_id=-1,
        seed=args.seed,
    )
    return T5Model(config).eval()


def make_trace(args: argparse.Namespace, count: int, rng: np.random.Generator) -> list[dict]:
    """``count`` requests; every ``--long-every``-th is long, the rest short."""
    trace = []
    for index in range(count):
        is_long = (index % args.long_every) == (args.long_every - 1)
        trace.append(
            {
                "row": rng.integers(4, args.vocab_size, size=args.input_length).astype(np.int64),
                "budget": args.long_budget if is_long else args.short_budget,
                "long": is_long,
            }
        )
    return trace


def solo_oracle(model: T5Model, request: dict) -> np.ndarray:
    return model.generate(request["row"][None], max_length=request["budget"], use_cache=False)[0]


# -- static baseline: FIFO request batches, lock-step to the longest budget ------------


def serve_static_burst(model: T5Model, trace: list[dict], batch_size: int) -> tuple[float, list[np.ndarray]]:
    """Decode the whole burst in FIFO batches; each batch runs to its max budget."""
    outputs: list[np.ndarray] = []
    start = time.perf_counter()
    for begin in range(0, len(trace), batch_size):
        chunk = trace[begin : begin + batch_size]
        batch = np.stack([request["row"] for request in chunk])
        width = max(request["budget"] for request in chunk)
        decoded = model.generate(batch, max_length=width, use_cache=True)
        # The static batcher over-decodes short members to the convoy width;
        # only each request's own budget counts as useful output.
        outputs.extend(decoded[i, : chunk[i]["budget"]] for i in range(len(chunk)))
    return time.perf_counter() - start, outputs


def serve_continuous_burst(
    model: T5Model, trace: list[dict], max_slots: int, page_size: int
) -> tuple[float, list[np.ndarray], dict]:
    """Decode the whole burst through one continuous loop (single driver)."""
    loop = ContinuousDecodeLoop(model, max_slots=max_slots, page_size=page_size)
    start = time.perf_counter()
    tickets = [loop.submit(request["row"], max_length=request["budget"]) for request in trace]
    loop.drive(tickets)
    outputs = [ticket.result for ticket in tickets]
    return time.perf_counter() - start, outputs, loop.stats()


# -- open-loop latency traces ----------------------------------------------------------


def run_open_loop_continuous(
    model: T5Model, trace: list[dict], interval_s: float, max_slots: int, page_size: int
) -> list[dict]:
    """Threads arrive on a fixed schedule and drive the shared loop themselves."""
    loop = ContinuousDecodeLoop(model, max_slots=max_slots, page_size=page_size)
    records = [dict(request) for request in trace]
    epoch = time.perf_counter() + 0.05

    def client(record: dict, offset: float):
        wait = epoch + offset - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        arrived = time.perf_counter()
        record["output"] = loop.run([record["row"]], max_length=record["budget"])[0]
        record["latency_s"] = time.perf_counter() - arrived

    threads = [
        threading.Thread(target=client, args=(record, index * interval_s))
        for index, record in enumerate(records)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return records


def run_open_loop_static(
    model: T5Model, trace: list[dict], interval_s: float, batch_size: int, window_s: float
) -> list[dict]:
    """The same arrival schedule against a micro-batcher-style scheduler.

    One worker drains a FIFO queue into batches of up to ``batch_size``
    (waiting at most ``window_s`` to fill one), decodes each batch lock-step
    to its longest member's budget, and resolves every member at the batch's
    completion time — the convoy behaviour the continuous loop removes.
    """
    records = [dict(request) for request in trace]
    inbox: queue.Queue = queue.Queue()
    epoch = time.perf_counter() + 0.05

    def client(record: dict, offset: float):
        wait = epoch + offset - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        record["arrived_s"] = time.perf_counter()
        inbox.put(record)

    def worker():
        served = 0
        while served < len(records):
            batch = [inbox.get()]
            deadline = time.perf_counter() + window_s
            while len(batch) < batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    batch.append(inbox.get(timeout=remaining))
                except queue.Empty:
                    break
            stacked = np.stack([record["row"] for record in batch])
            width = max(record["budget"] for record in batch)
            decoded = model.generate(stacked, max_length=width, use_cache=True)
            finished = time.perf_counter()
            for position, record in enumerate(batch):
                record["output"] = decoded[position, : record["budget"]]
                record["latency_s"] = finished - record["arrived_s"]
            served += len(batch)

    threads = [
        threading.Thread(target=client, args=(record, index * interval_s))
        for index, record in enumerate(records)
    ]
    server = threading.Thread(target=worker)
    server.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    server.join()
    return records


def percentile_ms(latencies: list[float], q: float) -> float:
    """The q-th percentile of ``latencies`` (seconds) in milliseconds.

    Estimated through :class:`repro.obs.metrics.Histogram` so benchmark
    quantiles use the same log-bucketed estimator as the serving metrics.
    """
    histogram = Histogram("latency_ms")
    for value in latencies:
        histogram.record(value * 1000.0)
    return round(histogram.quantile(q / 100.0), 3)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_continuous.json"))
    # The model is deliberately matmul-dominated (d_model 256): the point is
    # the *scheduling* win of not convoying short requests behind long ones,
    # which a tiny config would bury under per-row python overhead.
    parser.add_argument("--vocab-size", type=int, default=96)
    parser.add_argument("--d-model", type=int, default=256)
    parser.add_argument("--num-heads", type=int, default=8)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--input-length", type=int, default=12)
    parser.add_argument("--short-budget", type=int, default=8, help="decode budget of short requests")
    parser.add_argument("--long-budget", type=int, default=64, help="decode budget of long requests")
    parser.add_argument("--long-every", type=int, default=4, help="every Nth request is long")
    parser.add_argument("--burst-size", type=int, default=16, help="requests in the throughput burst")
    parser.add_argument("--trace-size", type=int, default=16, help="requests in the open-loop trace")
    parser.add_argument("--arrival-interval-ms", type=float, default=40.0, help="open-loop arrival spacing")
    parser.add_argument("--max-slots", type=int, default=4, help="continuous batch slots / static batch size")
    parser.add_argument("--page-size", type=int, default=16)
    parser.add_argument("--window-ms", type=float, default=20.0, help="static batcher collect window")
    parser.add_argument("--latency-factor", type=float, default=1.5, help="required short-request p50 improvement")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    model = build_model(args)
    rng = np.random.default_rng(args.seed)
    # Warm-up: BLAS pool start-up and position-bias memo population must not
    # bias whichever scheduler runs first.
    model.generate(rng.integers(4, args.vocab_size, size=(1, args.input_length)), max_length=2, use_cache=True)

    # -- throughput: saturated mixed-budget burst --------------------------------------
    burst = make_trace(args, args.burst_size, rng)
    useful_tokens = sum(request["budget"] for request in burst)
    static_seconds, static_outputs = serve_static_burst(model, burst, args.max_slots)
    continuous_seconds, continuous_outputs, loop_stats = serve_continuous_burst(
        model, burst, args.max_slots, args.page_size
    )
    throughput = {
        "requests": len(burst),
        "useful_tokens": useful_tokens,
        "static_row_steps": sum(
            max(r["budget"] for r in burst[b : b + args.max_slots]) * len(burst[b : b + args.max_slots])
            for b in range(0, len(burst), args.max_slots)
        ),
        "continuous_row_steps": useful_tokens,
        "static_seconds": round(static_seconds, 6),
        "continuous_seconds": round(continuous_seconds, 6),
        "static_tokens_per_sec": round(useful_tokens / static_seconds, 2),
        "continuous_tokens_per_sec": round(useful_tokens / continuous_seconds, 2),
        "speedup": round(static_seconds / continuous_seconds, 3),
    }

    # -- equivalence: every continuous output == its solo naive oracle ----------------
    oracles = [solo_oracle(model, request) for request in burst]
    burst_equal = all(np.array_equal(out, oracle) for out, oracle in zip(continuous_outputs, oracles))
    static_equal = all(np.array_equal(out, oracle) for out, oracle in zip(static_outputs, oracles))

    # -- latency: open-loop mixed trace ------------------------------------------------
    trace = make_trace(args, args.trace_size, rng)
    interval_s = args.arrival_interval_ms / 1000.0
    static_records = run_open_loop_static(model, trace, interval_s, args.max_slots, args.window_ms / 1000.0)
    continuous_records = run_open_loop_continuous(model, trace, interval_s, args.max_slots, args.page_size)
    trace_equal = all(
        np.array_equal(record["output"], solo_oracle(model, record)) for record in continuous_records
    )

    def summarize(records: list[dict]) -> dict:
        shorts = [record["latency_s"] for record in records if not record["long"]]
        longs = [record["latency_s"] for record in records if record["long"]]
        return {
            "short_p50_ms": percentile_ms(shorts, 50),
            "short_p95_ms": percentile_ms(shorts, 95),
            "long_p50_ms": percentile_ms(longs, 50),
            "mean_ms": percentile_ms([record["latency_s"] for record in records], 50),
        }

    static_latency = summarize(static_records)
    continuous_latency = summarize(continuous_records)
    improvement = static_latency["short_p50_ms"] / max(continuous_latency["short_p50_ms"], 1e-9)
    latency = {
        "requests": len(trace),
        "arrival_interval_ms": args.arrival_interval_ms,
        "short_budget": args.short_budget,
        "long_budget": args.long_budget,
        "static": static_latency,
        "continuous": continuous_latency,
        "short_p50_improvement": round(improvement, 3),
        "required_improvement": args.latency_factor,
    }

    results = {
        "benchmark": "continuous_batching",
        "model": {
            "d_model": args.d_model,
            "num_heads": args.num_heads,
            "num_encoder_layers": args.num_layers,
            "num_decoder_layers": args.num_layers,
            "vocab_size": args.vocab_size,
            "parameters": model.num_parameters(),
        },
        "max_slots": args.max_slots,
        "page_size": args.page_size,
        "throughput": throughput,
        "latency": latency,
        "equivalence": {
            "burst_sequences": len(burst),
            "trace_sequences": len(continuous_records),
            "continuous_matches_naive_oracle": bool(burst_equal and trace_equal),
            "static_matches_naive_oracle": bool(static_equal),
        },
        "scheduler": loop_stats,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    print(
        f"throughput: static {throughput['static_tokens_per_sec']:>8.1f} tok/s | "
        f"continuous {throughput['continuous_tokens_per_sec']:>8.1f} tok/s | "
        f"speedup {throughput['speedup']:.2f}x "
        f"(row-steps {throughput['static_row_steps']} -> {throughput['continuous_row_steps']})"
    )
    print(
        f"   latency: short p50 static {static_latency['short_p50_ms']:>8.1f} ms | "
        f"continuous {continuous_latency['short_p50_ms']:>8.1f} ms | "
        f"improvement {improvement:.2f}x (required {args.latency_factor:.1f}x)"
    )
    print(
        f"equivalence: continuous==naive {results['equivalence']['continuous_matches_naive_oracle']} | "
        f"static==naive {results['equivalence']['static_matches_naive_oracle']}"
    )
    print(f"wrote {args.output}")

    failures = []
    if throughput["speedup"] < 1.0:
        failures.append(
            f"throughput: continuous batching is slower than static batching ({throughput['speedup']:.2f}x)"
        )
    if improvement < args.latency_factor:
        failures.append(
            f"latency: short-request p50 improved only {improvement:.2f}x "
            f"(required {args.latency_factor:.1f}x)"
        )
    if not (burst_equal and trace_equal):
        failures.append("equivalence: a continuous output diverged from its solo use_cache=False oracle")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
