"""Table X: FeVisQA case-study answers (four DV questions over the Figure-8 chart)."""

from conftest import run_once

from repro.baselines import ZeroShotHeuristicGeneration
from repro.evaluation import case_studies


def test_table10_fevisqa_case_study(benchmark, experiment_suite):
    def build():
        systems = {"GPT-4 (0-shot)": ZeroShotHeuristicGeneration()}
        return case_studies.fevisqa_case_study(experiment_suite.corpora.pool, systems=systems)

    study = run_once(benchmark, build)
    print("\nTable X — answers generated for the FeVisQA case study")
    width = max(len(row["question"]) for row in study["qa"])
    for row in study["qa"]:
        predicted = ", ".join(f"{name}={value}" for name, value in row["predictions"].items())
        print(f"{row['question']:<{width}}  gold={row['ground_truth']:<8} {predicted}")

    assert len(study["qa"]) == 4
    # Ground-truth answers come from actually executing the DV query, so the
    # numeric ones must be consistent with each other.
    answers = {row["question"]: row["ground_truth"] for row in study["qa"]}
    parts = int(answers["How many parts are there in the chart ?"])
    assert parts >= 1
    for row in study["qa"]:
        assert row["predictions"]
