"""Corpus QA benchmark: retrieval quality and token-streaming equivalence.

Three gated sections, written to ``BENCH_corpus.json``:

* **retrieval** — a synthetic multi-document corpus indexed by
  :class:`~repro.datasets.corpus.CorpusIndex`, probed with seeded queries
  derived from each document's own text (token dropout + shuffle).  The
  top-``k`` hit rate (source document retrieved) must reach
  ``--min-hit-rate`` (0.9), and the index must be *deterministic*: built
  twice and reloaded from disk it returns identical rankings for every
  query.
* **streaming** — a tiny seeded :class:`~repro.core.model.DataVisT5`
  registered (with its corpus index) through
  :class:`~repro.deploy.registry.ModelRegistry` and served via **both**
  front-ends: the thread :class:`~repro.serving.server.Server` and the
  process-sharded :class:`~repro.serving.sharded.ShardedServer`.  Every
  streamed response, reassembled with
  :func:`~repro.serving.protocol.assemble_stream`, must be **bitwise-equal**
  to the non-streaming response for the same request on both tiers.
* **latency** — streaming must actually stream: across fresh (uncached)
  requests, the p50 time-to-first-chunk must be at most
  ``--first-chunk-factor`` (0.5) of the p50 full-response time.

Run it via ``make bench-corpus`` or directly::

    PYTHONPATH=src python benchmarks/corpus_benchmark.py --output BENCH_corpus.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets.corpus import CorpusDocument, CorpusIndex
from repro.deploy.registry import ModelRegistry
from repro.obs.metrics import Histogram
from repro.serving.pipeline import Pipeline
from repro.serving.protocol import Request, assemble_stream
from repro.serving.server import Server, ServerConfig
from repro.serving.sharded import ShardConfig, ShardedServer

#: Word pools the synthetic corpus is composed from; combinations are drawn
#: without replacement so every document keeps a distinctive vocabulary core.
CHART_TYPES = ("bar", "line", "scatter", "pie", "area", "heatmap", "box", "radar")
METRICS = (
    "revenue", "temperature", "latency", "population", "rainfall", "enrollment",
    "throughput", "inventory", "emissions", "attendance",
)
DIMENSIONS = ("region", "quarter", "department", "species", "platform", "cohort")


def build_corpus(num_docs: int, rng: np.random.Generator) -> list[CorpusDocument]:
    """``num_docs`` documents with deterministic, mostly-distinct vocabularies."""
    combos = [
        (chart, metric, dim)
        for chart in CHART_TYPES
        for metric in METRICS
        for dim in DIMENSIONS
    ]
    order = rng.permutation(len(combos))[:num_docs]
    documents = []
    for index, position in enumerate(order):
        chart, metric, dim = combos[position]
        documents.append(
            CorpusDocument(
                doc_id=f"doc-{index:03d}",
                title=f"{metric} by {dim}",
                chart=f"{chart} chart showing {metric} grouped by {dim} with the peak highlighted",
                schema=None,
                table=f"{dim} | {metric}",
            )
        )
    return documents


def make_queries(
    documents: list[CorpusDocument], count: int, rng: np.random.Generator, drop_p: float
) -> list[tuple[str, str]]:
    """``count`` seeded (query, source_doc_id) probes via token dropout + shuffle."""
    queries = []
    for _ in range(count):
        document = documents[int(rng.integers(len(documents)))]
        words = document.text().split()
        kept = [word for word in words if rng.random() > drop_p]
        if not kept:  # degenerate dropout: keep the most distinctive field
            kept = document.chart.split()
        rng.shuffle(kept)
        queries.append((" ".join(kept), document.doc_id))
    return queries


def retrieval_section(args: argparse.Namespace) -> tuple[dict, CorpusIndex, list[CorpusDocument]]:
    rng = np.random.default_rng(args.seed)
    documents = build_corpus(args.num_docs, rng)
    index = CorpusIndex(documents)
    rebuilt = CorpusIndex(list(documents))
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "index.json"
        index.save(path)
        reloaded = CorpusIndex.load(path)
        queries = make_queries(documents, args.num_queries, rng, args.drop_p)
        hits = 0
        deterministic = True
        for query, source_id in queries:
            ranked = index.search(query, top_k=args.top_k)
            if any(document.doc_id == source_id for document, _ in ranked):
                hits += 1
            key = [(document.doc_id, score) for document, score in ranked]
            for twin in (rebuilt, reloaded):
                twin_key = [
                    (document.doc_id, score)
                    for document, score in twin.search(query, top_k=args.top_k)
                ]
                if twin_key != key:
                    deterministic = False
    hit_rate = hits / len(queries)
    section = {
        "documents": len(documents),
        "queries": len(queries),
        "top_k": args.top_k,
        "token_drop_p": args.drop_p,
        "hits": hits,
        "hit_rate": round(hit_rate, 4),
        "required_hit_rate": args.min_hit_rate,
        "fingerprint": index.fingerprint(),
        "rankings_deterministic": deterministic,
    }
    return section, index, documents


def build_backend(documents: list[CorpusDocument], args: argparse.Namespace) -> DataVisT5:
    corpus_texts = [document.text() for document in documents]
    config = DataVisT5Config.from_preset(
        "tiny",
        max_input_length=64,
        max_target_length=16,
        max_decode_length=args.decode_length,
        seed=args.seed,
    )
    return DataVisT5.from_corpus(corpus_texts, config=config, max_vocab_size=400)


def stream_questions(documents: list[CorpusDocument], count: int, salt: str) -> list[str]:
    return [
        f"{salt} what does the {documents[i % len(documents)].title} chart show"
        for i in range(count)
    ]


def thread_server_section(pipeline: Pipeline, questions: list[str]) -> dict:
    """Stream + sync every question through the asyncio Server; time both."""

    async def drive() -> dict:
        records = []
        async with Server(pipeline, ServerConfig(num_workers=2)) as server:
            for question in questions:
                request = Request(task="corpus_qa", question=question)
                started = time.perf_counter()
                first_chunk_s = None
                chunks = []
                async for chunk in server.stream(request):
                    if first_chunk_s is None:
                        first_chunk_s = time.perf_counter() - started
                    chunks.append(chunk)
                total_s = time.perf_counter() - started
                streamed = assemble_stream(chunks)
                sync = await server.submit(Request(task="corpus_qa", question=question))
                records.append(
                    {
                        "chunks": len(chunks),
                        "first_chunk_s": first_chunk_s,
                        "total_s": total_s,
                        "bitwise_equal": streamed.error is None
                        and sync.error is None
                        and streamed.output == sync.output,
                    }
                )
        return summarize_stream(records)

    return asyncio.run(drive())


def sharded_section(
    registry_path: Path, ref: str, questions: list[str], num_shards: int
) -> dict:
    """Stream + sync every question through the process-sharded tier."""
    records = []
    config = ShardConfig(num_shards=num_shards, heartbeat_timeout_ms=10000.0)
    with ShardedServer(registry_path, ref, config) as server:
        for question in questions:
            request = Request(task="corpus_qa", question=question)
            started = time.perf_counter()
            first_chunk_s = None
            chunks = []
            for chunk in server.stream(request):
                if first_chunk_s is None:
                    first_chunk_s = time.perf_counter() - started
                chunks.append(chunk)
            total_s = time.perf_counter() - started
            streamed = assemble_stream(chunks)
            sync = server.submit(Request(task="corpus_qa", question=question))
            records.append(
                {
                    "chunks": len(chunks),
                    "first_chunk_s": first_chunk_s,
                    "total_s": total_s,
                    "bitwise_equal": streamed.error is None
                    and sync.error is None
                    and streamed.output == sync.output,
                }
            )
    return summarize_stream(records)


def summarize_stream(records: list[dict]) -> dict:
    """Aggregate per-stream records; p50s via the shared log-bucket histogram."""

    def p50_ms(samples_s: list[float]) -> float:
        histogram = Histogram("latency_ms")
        for value in samples_s:
            histogram.record(value * 1000.0)
        return round(histogram.quantile(0.5), 3)

    firsts = [record["first_chunk_s"] for record in records if record["first_chunk_s"]]
    totals = [record["total_s"] for record in records]
    return {
        "requests": len(records),
        "chunks_per_request": [record["chunks"] for record in records],
        "all_bitwise_equal": all(record["bitwise_equal"] for record in records),
        "first_chunk_p50_ms": p50_ms(firsts) if firsts else None,
        "full_response_p50_ms": p50_ms(totals),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_corpus.json"))
    parser.add_argument("--num-docs", type=int, default=40)
    parser.add_argument("--num-queries", type=int, default=200)
    parser.add_argument("--top-k", type=int, default=3)
    parser.add_argument("--drop-p", type=float, default=0.3, help="query token dropout probability")
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    parser.add_argument("--stream-requests", type=int, default=8, help="streamed requests per tier")
    parser.add_argument("--num-shards", type=int, default=2)
    parser.add_argument("--decode-length", type=int, default=20)
    parser.add_argument(
        "--first-chunk-factor",
        type=float,
        default=0.5,
        help="required p50 first-chunk / p50 full-response ratio ceiling",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    retrieval, index, documents = retrieval_section(args)
    print(
        f"retrieval: hit rate {retrieval['hit_rate']:.3f} over {retrieval['queries']} queries "
        f"(required {args.min_hit_rate:.2f}) | deterministic {retrieval['rankings_deterministic']}"
    )

    model = build_backend(documents, args)
    with tempfile.TemporaryDirectory() as scratch:
        registry_path = Path(scratch) / "registry.json"
        registry = ModelRegistry(registry_path)
        manifest = registry.register_checkpoint(
            "corpus-qa-bench", model, Path(scratch) / "ckpt", corpus_index=index
        )
        pipeline = registry.build_pipeline(manifest.id)
        thread_tier = thread_server_section(
            pipeline, stream_questions(documents, args.stream_requests, "thread")
        )
        sharded_tier = sharded_section(
            registry_path,
            manifest.id,
            stream_questions(documents, args.stream_requests, "sharded"),
            args.num_shards,
        )

    first_p50 = thread_tier["first_chunk_p50_ms"]
    full_p50 = thread_tier["full_response_p50_ms"]
    ratio = (first_p50 / full_p50) if first_p50 and full_p50 else None
    latency = {
        "first_chunk_p50_ms": first_p50,
        "full_response_p50_ms": full_p50,
        "ratio": round(ratio, 4) if ratio is not None else None,
        "required_ratio": args.first_chunk_factor,
    }
    print(
        f" streaming: thread bitwise {thread_tier['all_bitwise_equal']} | "
        f"sharded bitwise {sharded_tier['all_bitwise_equal']}"
    )
    print(
        f"   latency: first chunk p50 {first_p50} ms / full p50 {full_p50} ms "
        f"= {latency['ratio']} (required <= {args.first_chunk_factor:.2f})"
    )

    results = {
        "benchmark": "corpus_qa",
        "seed": args.seed,
        "retrieval": retrieval,
        "streaming": {"thread_server": thread_tier, "sharded_server": sharded_tier},
        "latency": latency,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    failures = []
    if retrieval["hit_rate"] < args.min_hit_rate:
        failures.append(
            f"retrieval: hit rate {retrieval['hit_rate']:.3f} below required {args.min_hit_rate:.2f}"
        )
    if not retrieval["rankings_deterministic"]:
        failures.append("retrieval: rebuilt/reloaded index returned different rankings")
    if not thread_tier["all_bitwise_equal"]:
        failures.append("streaming: a thread-server stream reassembled differently from its sync response")
    if not sharded_tier["all_bitwise_equal"]:
        failures.append("streaming: a sharded-server stream reassembled differently from its sync response")
    if ratio is None or ratio > args.first_chunk_factor:
        failures.append(
            f"latency: first-chunk p50 / full p50 = {latency['ratio']} "
            f"exceeds the {args.first_chunk_factor:.2f} ceiling"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
