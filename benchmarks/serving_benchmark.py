"""Serving-under-load benchmark: the async Server vs synchronous Pipeline.serve.

Replays an open-loop arrival trace — bursts of mixed-task requests arriving
over a fixed window, the traffic shape the async front-end exists for —
against both serving paths:

* **sync** (the baseline): ``Pipeline.serve`` takes a pre-collected list, so
  a synchronous caller must wait for the whole trace to arrive before the
  first forward pass runs; its makespan is the arrival window plus the full
  burst-serve time.
* **async**: the ``Server`` accepts each request the moment it arrives,
  batches it under the time/size flush policy and computes *during* the
  arrival window, so its makespan approaches ``max(arrival window, compute)``.

Both paths serve the identical trace from cold caches with the same
smoke-scale DataVisT5 and the same ``max_batch``; the benchmark asserts
their outputs are bitwise-identical, writes ``BENCH_serving.json``
(throughput = requests / makespan, plus the per-request latency p50/p99 of
each path and the server's batch/queue telemetry), and exits non-zero if
async throughput falls below the synchronous baseline or any output differs.

A third section sweeps the server's ``ServerConfig.precision`` knob.  The
serving model is first fine-tuned for a few steps on serving-format
(source, target) pairs — an untrained model emits near-uniform logits whose
argmax survives any quantizer, which silently hides int8 damage — then the
same request burst is pushed through the async server with float64, float32
and two int8 siblings: ``int8_uncalibrated`` (plain symmetric
``quantize_int8()``, recorded as the agreement-collapse exhibit) and
``int8`` (calibrated via :meth:`DataVisT5.calibrate` on held-out
serving-format texts, then quantized under the resulting policy).  Per-mode
throughput and speedup stay recorded, not gated — at smoke scale the tiny
model's forward passes are too small for precision to pay off reliably;
``make bench-decode`` owns the precision performance gates.  The *output
agreement* of the calibrated ``int8`` mode against float64, however, is
**gated**: below ``--int8-agreement-threshold`` (default 0.99) the
benchmark exits non-zero.

Run it via ``make bench-serving`` or directly::

    PYTHONPATH=src python benchmarks/serving_benchmark.py --output BENCH_serving.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import random
import sys
import time
from pathlib import Path

from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets import build_database_pool, generate_nvbench
from repro.obs.metrics import Histogram
from repro.serving import Pipeline, PipelineConfig, Request, Server, ServerConfig, serve_requests


def finetune(model: DataVisT5, pairs: list[tuple[str, str]], steps: int, seed: int) -> float:
    """A few epochs of supervised fine-tuning on serving-format pairs.

    The precision sweep needs a model whose logits carry learned structure:
    an untrained model's near-argmax-stable noise floor makes every
    quantizer look perfect.  Returns the final training loss.
    """
    optimizer = model.make_optimizer(total_steps=steps, learning_rate=5e-3)
    rng = random.Random(seed)
    order = list(range(len(pairs)))
    batch_size, cursor, loss = 8, len(order), 0.0
    for _ in range(steps):
        if cursor + batch_size > len(order):
            rng.shuffle(order)
            cursor = 0
        chosen = order[cursor : cursor + batch_size]
        cursor += batch_size
        batch = model.collate([pairs[i][0] for i in chosen], [pairs[i][1] for i in chosen])
        loss = model.train_step(batch, optimizer)
    return loss


def build_trace(
    args: argparse.Namespace,
) -> tuple[list[tuple[float, Request]], dict, DataVisT5, dict[str, DataVisT5], dict]:
    """(arrival_time, request) pairs — bursty mixed-task traffic — plus the models.

    Builds and fine-tunes the float64 serving model, then derives two
    weight-identical int8 siblings via ``clone_architecture`` +
    ``copy_weights_from``: ``int8_uncalibrated`` (plain symmetric
    quantization) and ``int8`` (calibrated on held-out serving-format
    texts).  Returns the trace, workload description, float64 model, the
    int8 siblings, and the calibration record for the output JSON.
    """
    pool = build_database_pool(num_databases=4, seed=args.seed)
    nvbench = generate_nvbench(pool, examples_per_database=8, seed=args.seed)

    def make_config() -> DataVisT5Config:
        return DataVisT5Config.from_preset(
            "tiny", max_input_length=64, max_target_length=32, max_decode_length=args.decode_length
        )

    texts = [example.question for example in nvbench.examples[:24]]
    texts += [example.query_text for example in nvbench.examples[:24]]
    model = DataVisT5.from_corpus(texts, config=make_config(), max_vocab_size=800)

    unique: list[Request] = []
    targets: list[str] = []
    for example in nvbench.examples:
        schema = pool.get(example.db_id).schema
        unique.append(Request(task="text_to_vis", question=example.question, schema=schema))
        targets.append(example.query_text)
        unique.append(Request(task="vis_to_text", chart=example.query, schema=schema))
        targets.append(example.question)
        unique.append(
            Request(task="fevisqa", question="How many parts are there ?", chart=example.query, schema=schema)
        )
        targets.append(f"there are {len(example.query.to_text().split())} parts")

    # Fine-tune on the exact source encodings the pipeline serves, so the
    # learned distribution (and therefore the quantization damage) lives on
    # serving-format inputs rather than raw corpus text.
    scratch = Pipeline.from_model(model)
    sources = [scratch.prepare(request).source for request in unique]
    final_loss = finetune(model, list(zip(sources, targets)), steps=args.train_steps, seed=args.seed)

    def sibling() -> DataVisT5:
        twin = model.clone_architecture()
        twin.copy_weights_from(model)
        return twin

    naive = sibling().quantize_int8()

    rng = random.Random(args.seed)
    paired = list(zip(unique, sources))
    rng.shuffle(paired)
    unique = [request for request, _ in paired]

    calibrated = sibling()
    calibration_start = time.perf_counter()
    # The trace below only ever serves the first num_requests entries of the
    # shuffled request list; the tail is genuinely held out and calibrates
    # the policy.
    held_out = [source for _, source in paired[args.num_requests :]] or sources
    policy = calibrated.calibrate(
        held_out,
        n=args.calibration_samples,
        alpha=args.calibration_alpha,
        target_agreement=args.calibration_target,
        max_float_fraction=args.max_float_fraction,
        max_length=args.decode_length,
    )
    calibrated.quantize_int8()
    calibration = {
        "samples": min(args.calibration_samples, len(held_out)),
        "alpha": args.calibration_alpha,
        "target_agreement": args.calibration_target,
        "max_float_fraction": args.max_float_fraction,
        "float32_pinned_modules": list(policy.float32_modules),
        "seconds": round(time.perf_counter() - calibration_start, 3),
        "train_steps": args.train_steps,
        "final_train_loss": round(final_loss, 4),
    }

    requests: list[Request] = []
    while len(requests) < args.num_requests:
        if requests and rng.random() < args.duplicate_rate:
            requests.append(rng.choice(requests))  # repeat traffic exercises the caches
        else:
            requests.append(unique[len(requests) % len(unique)])

    trace: list[tuple[float, Request]] = []
    gap_seconds = args.burst_gap_ms / 1000.0
    for index, request in enumerate(requests):
        trace.append(((index // args.burst_size) * gap_seconds, request))

    tasks: dict[str, int] = {}
    for request in requests:
        tasks[request.task] = tasks.get(request.task, 0) + 1
    workload = {
        "num_requests": len(requests),
        "burst_size": args.burst_size,
        "burst_gap_ms": args.burst_gap_ms,
        "arrival_window_s": round(trace[-1][0], 3),
        "duplicate_rate": args.duplicate_rate,
        "tasks": tasks,
    }
    return trace, workload, model, {"int8_uncalibrated": naive, "int8": calibrated}, calibration


def run_sync(model: DataVisT5, trace: list[tuple[float, Request]], max_batch: int) -> tuple[float, list[str], list[float]]:
    """Collect the trace as it arrives, then serve it in one synchronous burst."""
    pipeline = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=max_batch))
    start = time.perf_counter()
    collected: list[Request] = []
    arrivals: list[float] = []
    for offset, request in trace:
        wait = start + offset - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        arrivals.append(time.perf_counter())
        collected.append(request)
    responses = pipeline.serve(collected)
    finished = time.perf_counter()
    latencies = [finished - arrived for arrived in arrivals]
    return finished - start, [response.output for response in responses], latencies


def run_async(
    model: DataVisT5, trace: list[tuple[float, Request]], args: argparse.Namespace
) -> tuple[float, list[str], list[float], dict]:
    """Submit each request at its arrival time; measure per-request latency."""
    pipeline = Pipeline.from_model(model, config=PipelineConfig(max_batch_size=args.max_batch))
    config = ServerConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_size=max(len(trace), 1),
        num_workers=args.num_workers,
    )

    async def _drive() -> tuple[float, list[str], list[float], dict]:
        server = Server(pipeline, config)
        outputs = [""] * len(trace)
        latencies = [0.0] * len(trace)

        async def one(index: int, request: Request) -> None:
            begin = time.perf_counter()
            response = await server.submit(request)
            latencies[index] = time.perf_counter() - begin
            outputs[index] = response.output

        async with server:
            pending: list[asyncio.Task] = []
            start = time.perf_counter()
            for index, (offset, request) in enumerate(trace):
                wait = start + offset - time.perf_counter()
                if wait > 0:
                    await asyncio.sleep(wait)
                pending.append(asyncio.create_task(one(index, request)))
            await asyncio.gather(*pending)
            elapsed = time.perf_counter() - start
        return elapsed, outputs, latencies, server.stats()

    return asyncio.run(_drive())


def run_precision_sweep(
    model: DataVisT5, int8_models: dict[str, DataVisT5], requests: list[Request], args: argparse.Namespace
) -> dict:
    """Serve the same burst through the async server at every precision mode.

    Each mode gets a fresh pipeline (cold caches) over weight-identical
    models — the int8 siblings carry the float64 model's trained weights,
    quantized — so the only difference between runs is the engines'
    compute/storage precision and (for ``int8``) the calibrated
    mixed-precision layout.  Agreement is the fraction of responses whose
    output text matches the float64 run exactly.
    """
    modes = {"float64": model, "float32": model, **int8_models}
    sweep: dict[str, dict] = {}
    reference: list[str] | None = None
    for mode, backend in modes.items():
        pipeline = Pipeline.from_model(backend, config=PipelineConfig(max_batch_size=args.max_batch))
        config = ServerConfig(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_size=max(len(requests), 1),
            num_workers=args.num_workers,
            precision="int8" if mode.startswith("int8") else mode,
        )
        start = time.perf_counter()
        responses, _ = serve_requests(pipeline, requests, config=config)
        seconds = time.perf_counter() - start
        outputs = [response.output for response in responses]
        reference = outputs if mode == "float64" else reference
        agreement = sum(a == b for a, b in zip(outputs, reference)) / max(len(outputs), 1)
        sweep[mode] = {
            "makespan_seconds": round(seconds, 6),
            "requests_per_sec": round(len(requests) / seconds, 2),
            "speedup_vs_float64": 1.0 if mode == "float64" else round(sweep["float64"]["makespan_seconds"] / seconds, 3),
            "output_agreement_vs_float64": round(agreement, 4),
        }
    return sweep


def latency_summary(latencies: list[float]) -> dict:
    """p50/p99/mean/max of a latency sample, in milliseconds.

    Quantiles come from a :class:`repro.obs.metrics.Histogram` — the same
    log-bucketed estimator the serving metrics use — instead of a private
    sort-and-index copy, so benchmark numbers and live metrics agree.
    """
    histogram = Histogram("latency_ms")
    for value in latencies:
        histogram.record(value * 1000.0)
    summary = histogram.summary()
    return {
        "p50": summary["p50"],
        "p99": summary["p99"],
        "mean": summary["mean"],
        "max": summary["max"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_serving.json"))
    parser.add_argument("--num-requests", type=int, default=72)
    parser.add_argument("--burst-size", type=int, default=6, help="requests arriving together")
    parser.add_argument("--burst-gap-ms", type=float, default=15.0, help="gap between bursts")
    parser.add_argument("--duplicate-rate", type=float, default=0.2)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--max-wait-ms", type=float, default=5.0)
    parser.add_argument("--num-workers", type=int, default=2)
    parser.add_argument("--decode-length", type=int, default=24)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--train-steps", type=int, default=150, help="fine-tuning steps before serving")
    parser.add_argument("--calibration-samples", type=int, default=24)
    parser.add_argument("--calibration-alpha", type=float, default=0.5)
    parser.add_argument(
        "--calibration-target", type=float, default=0.999, help="agreement target the policy search calibrates to"
    )
    parser.add_argument(
        "--max-float-fraction", type=float, default=0.25, help="float32 pin budget (fraction of quantizable params)"
    )
    parser.add_argument(
        "--int8-agreement-threshold",
        type=float,
        default=0.99,
        help="gated: calibrated int8 output agreement vs float64 must reach this",
    )
    args = parser.parse_args(argv)

    trace, workload, model, int8_models, calibration = build_trace(args)

    # Warm the model once (BLAS thread pools, allocator) outside both
    # measured paths so neither pays first-call overheads.
    Pipeline.from_model(model).submit(trace[0][1])

    sync_seconds, sync_outputs, sync_latencies = run_sync(model, trace, args.max_batch)
    async_seconds, async_outputs, async_latencies, server_stats = run_async(model, trace, args)
    precision_sweep = run_precision_sweep(model, int8_models, [request for _, request in trace], args)

    equivalent = sync_outputs == async_outputs
    results = {
        "benchmark": "serving_under_load",
        "workload": workload,
        "config": {
            "max_batch": args.max_batch,
            "max_wait_ms": args.max_wait_ms,
            "num_workers": args.num_workers,
        },
        "sync": {
            "makespan_seconds": round(sync_seconds, 6),
            "requests_per_sec": round(len(trace) / sync_seconds, 2),
            "latency_ms": latency_summary(sync_latencies),
        },
        "async": {
            "makespan_seconds": round(async_seconds, 6),
            "requests_per_sec": round(len(trace) / async_seconds, 2),
            "latency_ms": latency_summary(async_latencies),
            "batches": server_stats["batches"],
            "queue_wait_ms": server_stats["queue_wait_ms"],
            "requests": server_stats["requests"],
        },
        "throughput_ratio": round(sync_seconds / async_seconds, 3),
        "equivalent": equivalent,
        "precision_sweep": precision_sweep,
        "calibration": calibration,
        "int8_agreement_threshold": args.int8_agreement_threshold,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")

    for mode in ("sync", "async"):
        entry = results[mode]
        print(
            f"{mode:>6}: {entry['requests_per_sec']:>7.1f} req/s "
            f"(makespan {entry['makespan_seconds']:.3f}s) | "
            f"p50 {entry['latency_ms']['p50']:>7.1f}ms | p99 {entry['latency_ms']['p99']:>7.1f}ms"
        )
    print(f"async/sync throughput ratio: {results['throughput_ratio']:.2f}x | equivalent={equivalent}")
    for mode, entry in precision_sweep.items():
        print(
            f"{mode:>17}: {entry['requests_per_sec']:>7.1f} req/s "
            f"({entry['speedup_vs_float64']:.2f}x vs fp64, "
            f"agreement {entry['output_agreement_vs_float64']:.4f})"
        )
    if calibration["float32_pinned_modules"]:
        print(f"calibration: pinned {calibration['float32_pinned_modules']} to float32")
    print(f"wrote {args.output}")

    failures = []
    if not equivalent:
        failures.append("async server outputs differ from synchronous Pipeline.serve")
    if results["throughput_ratio"] < 1.0:
        failures.append(
            f"async throughput regressed below the synchronous baseline ({results['throughput_ratio']:.2f}x)"
        )
    int8_agreement = precision_sweep["int8"]["output_agreement_vs_float64"]
    if int8_agreement < args.int8_agreement_threshold:
        failures.append(
            f"calibrated int8 serving output agreement {int8_agreement:.4f} is below the "
            f"{args.int8_agreement_threshold} gate (uncalibrated sibling: "
            f"{precision_sweep['int8_uncalibrated']['output_agreement_vs_float64']:.4f})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
