"""Shared benchmark fixtures.

The heavy benchmarks (Tables IV, VI, VIII, XII) share one
:class:`ExperimentSuite` so the synthetic corpora and the pre-trained /
multi-task-fine-tuned DataVisT5 are built once per benchmark session.  The
scale is selected with the ``REPRO_BENCH_SCALE`` environment variable
(``smoke`` by default, ``paper`` for the larger configuration).
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.experiments import ExperimentScale, ExperimentSuite


def pytest_collection_modifyitems(items) -> None:
    """Mark everything under benchmarks/ as ``bench``.

    The tier-1 run (`make test`) collects tests/ and benchmarks/ together;
    the marker makes the split selectable (``-m bench`` / ``-m "not
    bench"``) without encoding directory layout into every invocation.
    """
    for item in items:
        if "benchmarks" in item.path.parts:
            item.add_marker(pytest.mark.bench)


def _selected_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    if name == "paper":
        return ExperimentScale.paper()
    # The smoke scale is tuned so the whole benchmark suite finishes in
    # minutes on a laptop CPU while still training every system.
    return ExperimentScale(
        num_databases=10,
        examples_per_database=10,
        num_chart2text=40,
        num_wikitabletext=40,
        max_fevisqa=240,
        max_test_examples=16,
        max_train_examples=120,
        pretrain_epochs=1,
        finetune_epochs=2,
        batch_size=8,
    )


@pytest.fixture(scope="session")
def experiment_suite() -> ExperimentSuite:
    return ExperimentSuite(scale=_selected_scale(), seed=0)


@pytest.fixture(scope="session")
def bench_pool(experiment_suite):
    return experiment_suite.corpora.pool


def run_once(benchmark, function):
    """Run a heavy benchmark exactly once (training loops are too slow to repeat)."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
