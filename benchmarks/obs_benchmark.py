"""Observability benchmark: instrumentation overhead and trace completeness.

Two gated sections, written to ``BENCH_obs.json``:

* **overhead** — the continuous-batching burst from ``continuous_benchmark``
  served twice through the same loop: tracing off (the default; metrics
  stay on, they always are) and tracing on at ``sample_rate=1.0`` with a
  root span per request, so every decode step records a span per active
  ticket — the worst case for the instrumentation.  The estimator is the
  **median of paired ratios**: ``--repeats`` back-to-back (untraced,
  traced) pairs in alternating ABBA order, each pair's ratio computed from
  two adjacent short runs.  Machine-speed drift on shared hardware swings
  individual runs by ±15% over tens of seconds — far more than the effect
  being measured — but drift is slow, so it cancels inside a sub-second
  pair, ABBA cancels any order bias, and the median discards pairs a noise
  spike landed on.  The gated ``overhead_fraction`` is that median, floored
  at zero; it must stay within ``--max-overhead`` (default 3%).
* **trace completeness** — one streamed ``corpus_qa`` request through a
  real forked-shard :class:`~repro.serving.sharded.ShardedServer` with
  tracing on.  The gateway's trace store must reconstruct the full span
  tree for that request — ``gateway.request`` → ``gateway.dispatch`` →
  ``shard.serve`` → ``pipeline.retrieve`` / ``pipeline.generate`` (with at
  least one ``decode.step`` child) / ``pipeline.merge`` — with one
  ``trace_id`` throughout and every parent link resolving; every streamed
  chunk must carry the trace context, and the shard's heartbeat-piggybacked
  metrics must merge into :meth:`ShardedServer.observability` with a
  non-zero decoded-token count.

Run it via ``make bench-obs`` or directly::

    PYTHONPATH=src python benchmarks/obs_benchmark.py --output BENCH_obs.json
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core.config import DataVisT5Config
from repro.core.model import DataVisT5
from repro.datasets.corpus import CorpusDocument, CorpusIndex
from repro.deploy.registry import ModelRegistry
from repro.obs.export import prometheus_text, render_trace, span_tree
from repro.obs.names import (
    SPAN_DECODE_STEP,
    SPAN_GATEWAY_DISPATCH,
    SPAN_GATEWAY_REQUEST,
    SPAN_PIPELINE_GENERATE,
    SPAN_PIPELINE_MERGE,
    SPAN_PIPELINE_RETRIEVE,
    SPAN_SERVER_REQUEST,
    SPAN_SHARD_SERVE,
)
from repro.nn.transformer import T5Model, TransformerConfig
from repro.serving.continuous import ContinuousDecodeLoop
from repro.serving.protocol import Request, assemble_stream
from repro.serving.sharded import ShardConfig, ShardedServer

#: Span names the completeness section requires in the streamed request's tree.
REQUIRED_SPANS = (
    SPAN_GATEWAY_REQUEST,
    SPAN_GATEWAY_DISPATCH,
    SPAN_SHARD_SERVE,
    SPAN_PIPELINE_RETRIEVE,
    SPAN_PIPELINE_GENERATE,
    SPAN_PIPELINE_MERGE,
    SPAN_DECODE_STEP,
)


def build_model(args: argparse.Namespace) -> T5Model:
    # eos_id=-1 never matches, so budgets (not random logits) shape the
    # schedule and both modes decode the exact same token count.
    config = TransformerConfig(
        vocab_size=args.vocab_size,
        d_model=args.d_model,
        num_heads=args.num_heads,
        d_ff=2 * args.d_model,
        num_encoder_layers=args.num_layers,
        num_decoder_layers=args.num_layers,
        eos_id=-1,
        seed=args.seed,
    )
    return T5Model(config).eval()


def make_burst(args: argparse.Namespace, rng: np.random.Generator) -> list[dict]:
    """Mixed-budget burst: every 4th request long, the rest short."""
    return [
        {
            "row": rng.integers(4, args.vocab_size, size=args.input_length).astype(np.int64),
            "budget": args.long_budget if index % 4 == 3 else args.short_budget,
        }
        for index in range(args.burst_size)
    ]


def serve_burst(model: T5Model, burst: list[dict], args: argparse.Namespace, traced: bool) -> float:
    """Wall seconds to decode ``burst`` through one continuous loop."""
    loop = ContinuousDecodeLoop(model, max_slots=args.max_slots, page_size=args.page_size)
    obs.configure(tracing=traced)
    start = time.perf_counter()
    tickets = []
    roots = []
    for request in burst:
        root = obs.TRACES.root(SPAN_SERVER_REQUEST, attrs={"task": "bench"}) if traced else None
        roots.append(root)
        tickets.append(
            loop.submit(
                request["row"],
                max_length=request["budget"],
                trace=root.context if root is not None else None,
            )
        )
    loop.drive(tickets)
    for root in roots:
        obs.TRACES.finish(root)
    return time.perf_counter() - start


def overhead_section(args: argparse.Namespace) -> dict:
    model = build_model(args)
    rng = np.random.default_rng(args.seed)
    burst = make_burst(args, rng)
    useful_tokens = sum(request["budget"] for request in burst)
    # Warm both modes with a full burst each: BLAS pool start-up, allocator
    # steady state and position-bias memos must not bias either side.
    obs.configure(capacity=65536)
    serve_burst(model, burst, args, traced=False)
    serve_burst(model, burst, args, traced=True)
    obs.TRACES.clear()
    untraced = []
    traced = []
    ratios = []
    spans_recorded = 0
    # Paired design: each repeat runs both modes back to back and keeps the
    # traced/untraced ratio of that PAIR.  Machine-speed drift is slow
    # relative to one short run, so it cancels inside a pair; alternating
    # which mode goes first (ABBA) cancels any residual order bias; the
    # median over pairs discards the ones a noise spike landed on.  The
    # ring is drained and garbage collected between pairs — the steady
    # state of a deployment whose collector ships traces — because spans
    # accumulating across repeats grow every later GC pass and would tax
    # only the traced side.
    for index in range(args.repeats):
        if index % 2 == 0:
            cold = serve_burst(model, burst, args, traced=False)
            hot = serve_burst(model, burst, args, traced=True)
        else:
            hot = serve_burst(model, burst, args, traced=True)
            cold = serve_burst(model, burst, args, traced=False)
        untraced.append(cold)
        traced.append(hot)
        ratios.append(hot / cold - 1.0)
        spans_recorded = len(obs.TRACES)
        obs.TRACES.clear()
        gc.collect()
    obs.configure(tracing=False)
    untraced_median = sorted(untraced)[len(untraced) // 2]
    traced_median = sorted(traced)[len(traced) // 2]
    ratio_median = sorted(ratios)[len(ratios) // 2]
    return {
        "requests": len(burst),
        "useful_tokens": useful_tokens,
        "repeats": args.repeats,
        "untraced_seconds": round(untraced_median, 6),
        "traced_seconds": round(traced_median, 6),
        "untraced_tokens_per_sec": round(useful_tokens / untraced_median, 2),
        "traced_tokens_per_sec": round(useful_tokens / traced_median, 2),
        "paired_ratios": [round(ratio, 4) for ratio in ratios],
        "overhead_fraction": round(max(0.0, ratio_median), 4),
        "spans_recorded_last_traced_run": spans_recorded,
        "max_overhead": args.max_overhead,
    }


def build_corpus_registry(scratch: Path, args: argparse.Namespace):
    """A registered tiny corpus_qa deployment (registry path, manifest id)."""
    documents = [
        CorpusDocument(
            doc_id=f"doc-{index}",
            title=f"metric{index} by region",
            chart=f"bar chart showing metric{index} grouped by region",
            schema=None,
            table=f"region | metric{index}",
        )
        for index in range(4)
    ]
    index = CorpusIndex(documents)
    config = DataVisT5Config.from_preset(
        "tiny", max_input_length=64, max_target_length=16, max_decode_length=12, seed=args.seed
    )
    model = DataVisT5.from_corpus([document.text() for document in documents], config=config, max_vocab_size=400)
    registry_path = scratch / "registry.json"
    registry = ModelRegistry(registry_path)
    manifest = registry.register_checkpoint("obs-bench", model, scratch / "ckpt", corpus_index=index)
    return registry_path, manifest.id


def verify_span_tree(spans: list, trace_id: str) -> list[str]:
    """Structural failures of the streamed request's span tree (empty = pass)."""
    failures = []
    names = {span.name for span in spans}
    for required in REQUIRED_SPANS:
        if required not in names:
            failures.append(f"trace: missing required span {required!r}")
    if any(span.trace_id != trace_id for span in spans):
        failures.append("trace: a span carries a foreign trace_id")
    ids = {span.span_id for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    if len(roots) != 1:
        failures.append(f"trace: expected exactly one root span, found {len(roots)}")
    elif roots[0].name != SPAN_GATEWAY_REQUEST:
        failures.append(f"trace: root span is {roots[0].name!r}, not {SPAN_GATEWAY_REQUEST!r}")
    dangling = [span.name for span in spans if span.parent_id is not None and span.parent_id not in ids]
    if dangling:
        failures.append(f"trace: dangling parent links on {sorted(set(dangling))}")
    if span_tree(spans, trace_id) is None:
        failures.append("trace: span_tree() could not reconstruct the tree")
    return failures


def completeness_section(args: argparse.Namespace) -> tuple[dict, list[str]]:
    obs.METRICS.reset()
    obs.TRACES.clear()
    obs.configure(tracing=True, sample_rate=1.0)
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as scratch:
        registry_path, ref = build_corpus_registry(Path(scratch), args)
        config = ShardConfig(num_shards=1, heartbeat_timeout_ms=10000.0)
        with ShardedServer(registry_path, ref, config) as server:
            request = Request(task="corpus_qa", question="what does the bar chart of metric1 show")
            chunks = list(server.stream(request))
            response = assemble_stream(chunks)
            # Shard counters ride the 50ms heartbeat, so the snapshot taken
            # right after the stream can predate the decode; poll until a
            # post-decode heartbeat lands.
            deadline = time.perf_counter() + 5.0
            while True:
                observed = server.observability()
                if observed["metrics"]["counters"].get("continuous.tokens_total", 0) > 0:
                    break
                if time.perf_counter() >= deadline:
                    break
                time.sleep(config.heartbeat_interval_ms / 1000.0)
        obs.configure(tracing=False)
        if response.error is not None:
            failures.append(f"trace: streamed request failed: {response.error} ({response.detail})")
        untagged = [chunk.seq for chunk in chunks if chunk.trace is None]
        if untagged:
            failures.append(f"trace: chunks without trace context: {untagged}")
        trace_id = chunks[0].trace["trace_id"] if chunks[0].trace else ""
        spans = obs.TRACES.spans(trace_id)
        failures.extend(verify_span_tree(spans, trace_id))
        decode_steps = sum(span.name == SPAN_DECODE_STEP for span in spans)
        tokens_total = observed["metrics"]["counters"].get("continuous.tokens_total", 0)
        if tokens_total <= 0:
            failures.append("metrics: shard heartbeat snapshots merged a zero decoded-token count")
        rendered = render_trace(spans, trace_id)
        section = {
            "chunks": len(chunks),
            "spans": len(spans),
            "decode_steps": decode_steps,
            "span_names": sorted({span.name for span in spans}),
            "trace_id": trace_id,
            "merged_tokens_total": tokens_total,
            "shard_snapshots": sorted(observed["shards"]),
            "rendered_trace": rendered,
            "prometheus_excerpt": "\n".join(prometheus_text(observed["metrics"]).splitlines()[:12]),
        }
    obs.TRACES.clear()
    obs.METRICS.reset()
    return section, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=Path("BENCH_obs.json"))
    parser.add_argument("--vocab-size", type=int, default=96)
    # Matmul-dominated on purpose: a toy d_model would measure python
    # per-step overhead against python instrumentation and flatter nobody.
    parser.add_argument("--d-model", type=int, default=256)
    parser.add_argument("--num-heads", type=int, default=8)
    parser.add_argument("--num-layers", type=int, default=2)
    parser.add_argument("--input-length", type=int, default=12)
    parser.add_argument("--short-budget", type=int, default=16)
    parser.add_argument("--long-budget", type=int, default=64)
    # Short runs on purpose: a pair's two runs must land inside the same
    # machine-speed regime (drift here swings ±15% over tens of seconds)
    # for the paired ratio to isolate the instrumentation cost.
    parser.add_argument("--burst-size", type=int, default=12)
    parser.add_argument("--max-slots", type=int, default=4)
    parser.add_argument("--page-size", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=17, help="paired runs; median paired ratio counts")
    parser.add_argument("--max-overhead", type=float, default=0.03, help="allowed traced slowdown fraction")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    overhead = overhead_section(args)
    print(
        f"overhead: untraced {overhead['untraced_tokens_per_sec']} tok/s | "
        f"traced {overhead['traced_tokens_per_sec']} tok/s | "
        f"slowdown {overhead['overhead_fraction']:.2%} (allowed {args.max_overhead:.0%})"
    )

    completeness, failures = completeness_section(args)
    print(
        f"trace: {completeness['spans']} spans, {completeness['decode_steps']} decode steps, "
        f"{completeness['chunks']} chunks | merged tokens_total {completeness['merged_tokens_total']}"
    )
    print(completeness["rendered_trace"])

    if overhead["overhead_fraction"] > args.max_overhead:
        failures.insert(
            0,
            f"overhead: tracing costs {overhead['overhead_fraction']:.2%} tokens/sec, "
            f"above the allowed {args.max_overhead:.0%}",
        )

    results = {
        "benchmark": "obs",
        "seed": args.seed,
        "overhead": overhead,
        "trace_completeness": completeness,
        "failures": failures,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
